package livestack

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/elastic"
	"repro/internal/fwd"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// TestTelemetryEndToEnd pushes real traffic through the live stack and
// checks the observability contract end to end:
//
//	(a) byte conservation — bytes leaving the forwarding clients equal
//	    bytes arriving at the I/O nodes and landing on the PFS;
//	(b) the /metrics exposition parses and carries the rpc latency
//	    histogram;
//	(c) a recorded trace shows every hop of the forwarding path in order:
//	    fwd → rpc → ion → agios → pfs.
func TestTelemetryEndToEnd(t *testing.T) {
	sink := telemetry.NewTestSink()
	st, err := Start(Config{IONs: 4, Telemetry: sink.Registry, Tracer: sink.Tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	app := policy.Application{ID: "telapp", Nodes: 4, Processes: 16}
	assigned, err := st.Arbiter.JobStarted(app)
	if err != nil {
		t.Fatal(err)
	}
	client, err := st.NewClient("telapp")
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitForAllocation(client, len(assigned), 2*time.Second); err != nil {
		t.Fatal(err)
	}

	const path = "/telapp/data"
	if err := client.Create(path); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("forward!"), 4096) // 32 KiB, spans chunks
	total := 0
	for i := 0; i < 4; i++ {
		n, err := client.Write(path, int64(total), payload)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	buf := make([]byte, total)
	if _, err := client.Read(path, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := client.Fsync(path); err != nil {
		t.Fatal(err)
	}

	// (a) Byte conservation across layers.
	for _, pair := range [][2]string{
		{"fwd_bytes_out_total", "ion_bytes_in_total"},
		{"fwd_bytes_out_total", "pfs_bytes_written_total"},
		{"fwd_bytes_in_total", "ion_bytes_out_total"},
		{"fwd_bytes_in_total", "pfs_bytes_read_total"},
	} {
		if err := sink.ExpectEqual(pair[0], pair[1]); err != nil {
			t.Error(err)
		}
	}
	if got := sink.CounterSum("fwd_bytes_out_total"); got != int64(total) {
		t.Errorf("fwd_bytes_out_total = %d, wrote %d", got, total)
	}
	if sink.HistogramCount("rpc_call_latency_seconds") == 0 {
		t.Error("no rpc call latencies observed")
	}

	// (b) HTTP exposition parses and contains the rpc latency histogram.
	srv := httptest.NewServer(telemetry.Handler(st.Telemetry, st.Tracer))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ParsePrometheus(string(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	for _, want := range []string{
		"rpc_call_latency_seconds_bucket", "rpc_call_latency_seconds_count",
		"fwd_bytes_out_total", "ion_writes_total", "pfs_bytes_written_total",
		"arbiter_solves_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	trResp, err := http.Get(srv.URL + "/trace/recent")
	if err != nil {
		t.Fatal(err)
	}
	trBody, _ := io.ReadAll(trResp.Body)
	trResp.Body.Close()
	if !strings.Contains(string(trBody), `"path":"`+path+`"`) {
		t.Errorf("/trace/recent has no trace for %s: %s", path, trBody)
	}

	// (c) A write trace records every hop of the forwarding path in order.
	var wtr telemetry.TraceSnapshot
	found := false
	for _, s := range sink.Traces() {
		if s.Op == "write" && s.Path == path {
			wtr, found = s, true
		}
	}
	if !found {
		t.Fatal("no finished write trace recorded")
	}
	want := []string{"fwd", "rpc", "ion", "agios", "pfs"}
	if got := telemetry.HopLayers(wtr); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("write trace hops = %v, want %v (trace %+v)", got, want, wtr)
	}
	if wtr.Total <= 0 {
		t.Errorf("trace total duration = %v, want > 0", wtr.Total)
	}
	for _, h := range wtr.Hops {
		if h.Duration < 0 {
			t.Errorf("hop %s has negative duration %v", h.Layer, h.Duration)
		}
	}
}

// TestCounterAuditRoundTrip drives a stack with the integrity features on
// through enough activity to register every counter family — including the
// integrity set (rpc_checksum_errors_total, ion_dedup_replays_total,
// ion_restarts_total, fwd_replayed_writes_total) — then audits the
// Prometheus exposition automatically: every counter and gauge registered
// anywhere in the stack must appear verbatim in /metrics, and the whole
// exposition must parse. A counter someone registers in a future layer is
// audited here for free.
func TestCounterAuditRoundTrip(t *testing.T) {
	st, err := Start(Config{
		IONs: 2, Scheduler: "FIFO", ChunkSize: 4096,
		WireChecksum: true, DedupWindow: 16,
		Telemetry: telemetry.New(),
		// A pinned-size scaler (Min = Max) never scales but registers the
		// whole elastic series family, pulling it into the audit below.
		HealthInterval: 50 * time.Millisecond,
		Elastic:        &elastic.Config{Min: 2, Max: 2, UpWatermark: 1, DownWatermark: 0.5},
		// A journal dir registers the journal_* family and turns on epoch
		// fencing, whose per-node/per-app series join the audit too.
		JournalDir: t.TempDir(),
		// The gray-failure planes register the health_degraded_*,
		// arbiter_quarantine_*, and fwd_hedge_* families. The slowness
		// factor is set absurdly high so a healthy two-node stack never
		// actually degrades anything — the series are audited at zero.
		SlowFactor:      100,
		QuarantineFloor: 1,
		Hedge:           fwd.HedgeConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	app := policy.Application{ID: "audit", Nodes: 2, Processes: 4}
	if _, err := st.Arbiter.JobStarted(app); err != nil {
		t.Fatal(err)
	}
	client, err := st.NewClient("audit")
	if err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := client.Create("/audit"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write("/audit", 0, bytes.Repeat([]byte("x"), 8192)); err != nil {
		t.Fatal(err)
	}

	// Exercise the integrity counters directly: a duplicate stamped write
	// bumps the daemon's replay counter, and a kill→restart cycle bumps
	// the restart counter.
	dup := &rpc.Message{Op: rpc.OpWrite, Path: "/audit", Offset: 8192,
		Data: []byte("dup"), ClientID: "audit-raw", Seq: 1}
	raw := rpc.Dial(st.Addrs[0], 1)
	defer raw.Close()
	if _, err := raw.Call(dup); err != nil {
		t.Fatal(err)
	}
	resp, err := raw.Call(dup)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Replayed {
		t.Fatal("duplicate stamped write was not replayed")
	}
	st.Daemons[1].Close()
	if err := st.RestartION(1); err != nil {
		t.Fatal(err)
	}

	snap := st.Telemetry.Snapshot()
	// The elastic series are registered (and hence audited below) even on
	// a pinned-size pool that never scales.
	for _, series := range []string{
		"elastic_scale_ups_total", "elastic_scale_downs_total",
		"elastic_drains_started_total", "elastic_drains_aborted_total",
		"elastic_provision_failures_total",
	} {
		if _, ok := snap.Counters[series]; !ok {
			t.Errorf("elastic counter %s not registered", series)
		}
	}
	if v, ok := snap.Gauges["elastic_pool_size"]; !ok || v != 2 {
		t.Errorf("elastic_pool_size = %d (registered=%v), want 2", v, ok)
	}
	for _, gauge := range []string{"health_degraded_ions", "arbiter_quarantine_ions"} {
		if v, ok := snap.Gauges[gauge]; !ok || v != 0 {
			t.Errorf("%s = %d (registered=%v), want registered and 0 on a healthy stack", gauge, v, ok)
		}
	}
	for counter, wantNonZero := range map[string]bool{
		`rpc_checksum_errors_total{node="ion00"}`:    false, // clean wire: present, zero
		`ion_dedup_replays_total{node="ion00"}`:      true,
		`ion_restarts_total{node="ion01"}`:           true,
		`fwd_replayed_writes_total{app="audit"}`:     false, // no transport retry happened
		"journal_appends_total":                      true,  // every JobStarted/publish is journaled
		"journal_fsyncs_total":                       true,
		"journal_append_errors_total":                false, // healthy disk: present, zero
		`epoch_fence_rejections_total{node="ion00"}`: false, // no blackout here: present, zero
		`epoch_stale_retries_total{app="audit"}`:     false,
		"health_degraded_transitions_total":          false, // healthy stack: present, zero
		"health_degraded_recovered_total":            false,
		"arbiter_quarantine_marked_total":            false,
		"arbiter_quarantine_restored_total":          false,
		`fwd_hedge_denied_total{app="audit"}`:        false,
		`fwd_hedge_launched_total{app="audit"}`:      false, // may legitimately move; presence is the contract
		`fwd_hedge_wins_total{app="audit"}`:          false,
	} {
		v, ok := snap.Counters[counter]
		if !ok {
			t.Errorf("integrity counter %s not registered", counter)
		}
		if wantNonZero && v == 0 {
			t.Errorf("%s = 0, the test exercised it", counter)
		}
	}

	srv := httptest.NewServer(telemetry.Handler(st.Telemetry, st.Tracer))
	defer srv.Close()
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ParsePrometheus(string(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	// The automatic audit: every registered series, not a hand-kept list.
	// (The exposition emits snapshot keys verbatim, so containment is
	// exact; the snapshot is re-taken after serving, but counters never
	// unregister.)
	audited := 0
	for name := range snap.Counters {
		if !strings.Contains(string(body), name+" ") {
			t.Errorf("/metrics missing registered counter %s", name)
		}
		audited++
	}
	for name := range snap.Gauges {
		if !strings.Contains(string(body), name+" ") {
			t.Errorf("/metrics missing registered gauge %s", name)
		}
		audited++
	}
	if audited < 20 {
		t.Fatalf("audited only %d series — the stack should register far more", audited)
	}

	// Label-cardinality audit: count distinct label sets per metric family
	// across all kinds. This stack has 2 I/O nodes and 1 application, so no
	// family has a reason to exceed a handful of label sets; a layer that
	// starts labeling by request, offset, or connection shows up here as
	// drift long before it hurts a real deployment (and long before the
	// registry's own DefaultMaxSeriesPerBase backstop coalesces it).
	perFamily := map[string]int{}
	countFamily := func(name string) {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			perFamily[name[:i]]++
		}
	}
	for name := range snap.Counters {
		countFamily(name)
	}
	for name := range snap.Gauges {
		countFamily(name)
	}
	for name := range snap.Histograms {
		countFamily(name)
	}
	const maxPerFamily = 4 // 2 nodes or 1 app, plus generous slack
	for family, n := range perFamily {
		if n > maxPerFamily {
			t.Errorf("family %s has %d label sets on a 2-ION/1-app stack (cardinality drift)", family, n)
		}
		if n > telemetry.DefaultMaxSeriesPerBase {
			t.Errorf("family %s exceeds the registry cap itself: %d", family, n)
		}
	}
	if len(perFamily) == 0 {
		t.Fatal("cardinality audit saw no labeled families — the stack labels per node and per app")
	}
}

// TestGrayFailureSeriesAbsentWhenUnconfigured pins the opt-in contract:
// a stack with no slowness factor and no hedging must register none of
// the gray-failure series — not even at zero. Their absence is how an
// operator knows the planes are off.
func TestGrayFailureSeriesAbsentWhenUnconfigured(t *testing.T) {
	st, err := Start(Config{
		IONs: 2, Scheduler: "FIFO", ChunkSize: 4096,
		Telemetry:      telemetry.New(),
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	client, err := st.NewClient("plain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(policy.Application{ID: "plain", Nodes: 2, Processes: 4}); err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := client.Create("/plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write("/plain", 0, bytes.Repeat([]byte("y"), 8192)); err != nil {
		t.Fatal(err)
	}

	snap := st.Telemetry.Snapshot()
	check := func(name string) {
		// fwd_degraded_ops_total (overload shedding) predates this PR and
		// is always on; the gray-failure families all carry these prefixes.
		for _, prefix := range []string{"fwd_hedge_", "health_degraded_", "arbiter_quarantine_"} {
			if strings.HasPrefix(name, prefix) {
				t.Errorf("series %s registered on a stack that never opted into gray-failure handling", name)
			}
		}
	}
	for name := range snap.Counters {
		check(name)
	}
	for name := range snap.Gauges {
		check(name)
	}
}

// benchmarkForward measures one client forwarding 64 KiB writes to one
// I/O node — the hot path the telemetry overhead budget applies to.
func benchmarkForward(b *testing.B, cfg Config) {
	st, err := Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Arbiter.JobStarted(policy.Application{ID: "bench", Nodes: 1, Processes: 1}); err != nil {
		b.Fatal(err)
	}
	client, err := st.NewClient("bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		b.Fatal(err)
	}
	if err := client.Create("/bench/file"); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64*1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write("/bench/file", 0, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardHotPath compares the forwarding write path with tracing
// off (bare: metrics only, nil tracer short-circuits all hop recording)
// against the fully instrumented stack (shared registry + request traces).
// scripts/bench_telemetry.sh turns the pair into BENCH_telemetry.json.
func BenchmarkForwardHotPath(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		benchmarkForward(b, Config{IONs: 1, Scheduler: "FIFO"})
	})
	b.Run("telemetry", func(b *testing.B) {
		benchmarkForward(b, Config{
			IONs: 1, Scheduler: "FIFO",
			Telemetry: telemetry.New(),
			Tracer:    telemetry.NewTracer(0),
		})
	})
}
