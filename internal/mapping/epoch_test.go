package mapping

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// drain pulls updates until the channel idles, returning the last map
// seen and how many arrived.
func drainUpdates(t *testing.T, w *Watcher, wait time.Duration) (Map, int) {
	t.Helper()
	var last Map
	n := 0
	for {
		select {
		case m := <-w.Updates():
			last = m
			n++
		case <-time.After(wait):
			return last, n
		}
	}
}

// TestWatcherDeliversVersionZeroOnce is the regression test for the old
// `w.last != 0` special-case: a version-0 mapping file (a solver that
// never set the field) used to be re-delivered on every poll forever.
// It must be delivered exactly once until the file actually changes.
func TestWatcherDeliversVersionZeroOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mapping.json")
	if err := WriteFile(path, Map{Version: 0, IONs: map[string][]string{"app": {"ion-0"}}}); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(path, 5*time.Millisecond)
	defer w.Stop()

	m, n := drainUpdates(t, w, 100*time.Millisecond)
	if n != 1 {
		t.Fatalf("version-0 map delivered %d times, want exactly 1", n)
	}
	if got := m.For("app"); len(got) != 1 || got[0] != "ion-0" {
		t.Fatalf("wrong map delivered: %v", got)
	}
}

// TestWatcherRedeliversOnFenceAdvance pins the epoch-aware half of the
// staleness check: after an arbiter recovery whose journal lost its tail,
// the recovery publish can carry a version the watcher already saw — the
// raised fence is what marks it as new, and it must be delivered.
func TestWatcherRedeliversOnFenceAdvance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mapping.json")
	if err := WriteFile(path, Map{Version: 3, IONs: map[string][]string{"app": {"ion-0"}}}); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(path, 5*time.Millisecond)
	defer w.Stop()
	if _, n := drainUpdates(t, w, 60*time.Millisecond); n != 1 {
		t.Fatalf("initial map delivered %d times, want 1", n)
	}

	// Same version, raised fence: the post-recovery republish.
	if err := WriteFile(path, Map{Version: 3, Fence: 3, IONs: map[string][]string{"app": {"ion-7"}}}); err != nil {
		t.Fatal(err)
	}
	m, n := drainUpdates(t, w, 100*time.Millisecond)
	if n != 1 {
		t.Fatalf("fence-advanced map delivered %d times, want exactly 1", n)
	}
	if got := m.For("app"); len(got) != 1 || got[0] != "ion-7" {
		t.Fatalf("stale pre-recovery map retained: %v", got)
	}
	if m.Fence != 3 {
		t.Fatalf("fence lost in delivery: %d", m.Fence)
	}
}

// TestWatcherStillDedupesUnchangedVersions keeps the original contract:
// an unchanged file is not re-delivered.
func TestWatcherStillDedupesUnchangedVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mapping.json")
	if err := WriteFile(path, Map{Version: 7, Fence: 2, IONs: map[string][]string{}}); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(path, 5*time.Millisecond)
	defer w.Stop()
	if _, n := drainUpdates(t, w, 100*time.Millisecond); n != 1 {
		t.Fatalf("unchanged map delivered %d times, want 1", n)
	}
}

func TestBusResumeAndRevoke(t *testing.T) {
	b := NewBus()
	b.Publish(map[string][]string{"a": {"ion-0"}})
	if v := b.Version(); v != 1 {
		t.Fatalf("version after first publish = %d, want 1", v)
	}

	// Resume raises the floor; a lower resume is a no-op.
	b.Resume(9)
	b.Resume(4)
	if v := b.Version(); v != 9 {
		t.Fatalf("version after Resume(9) = %d, want 9", v)
	}

	b.Revoke(10)
	m := b.Publish(map[string][]string{"a": {"ion-1"}})
	if m.Version != 10 || m.Fence != 10 {
		t.Fatalf("post-revoke publish = v%d fence %d, want v10 fence 10", m.Version, m.Fence)
	}

	// The fence is sticky across ordinary publishes and monotonic.
	b.Revoke(5)
	m = b.Publish(map[string][]string{"a": {"ion-2"}})
	if m.Version != 11 || m.Fence != 10 {
		t.Fatalf("later publish = v%d fence %d, want v11 fence 10", m.Version, m.Fence)
	}

	// Fence survives Clone and the file round trip.
	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fence != 10 || got.Version != 11 {
		t.Fatalf("file round trip lost epoch state: v%d fence %d", got.Version, got.Fence)
	}
}

// TestMapJSONOmitsZeroFence pins the opt-in discipline at the file layer:
// a map that never saw a recovery serialises byte-identically to the
// pre-epoch format (no "fence" key at all).
func TestMapJSONOmitsZeroFence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteFile(path, Map{Version: 2, IONs: map[string][]string{"a": {"x"}}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "fence") {
		t.Fatalf("zero fence serialised: %s", raw)
	}
}
