// Package mapping distributes I/O-node allocation decisions from the policy
// solver to the forwarding clients. The solver publishes a versioned map of
// application → I/O-node addresses; clients either subscribe in-process
// (Bus) or poll a mapping file the way GekkoFWD clients re-read their
// mapping every 10 seconds (FileStore + Watcher). An application mapped to
// an empty address list accesses the PFS directly.
package mapping

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Map is one allocation decision: which I/O nodes every application must
// use. Version increases with every publication and doubles as the map's
// epoch: forwarding clients stamp writes with it so I/O nodes can fence
// traffic routed by a mapping that predates a control-plane recovery.
type Map struct {
	Version uint64 `json:"version"`
	// Fence is the revocation floor: every epoch strictly below it has
	// been revoked by a recovery publish, and I/O nodes reject writes
	// stamped with one. Zero (the wire and file default) fences nothing.
	Fence uint64 `json:"fence,omitempty"`
	// IONs maps application IDs to the addresses of their assigned I/O
	// nodes. An empty (or absent) list means direct PFS access.
	IONs map[string][]string `json:"ions"`
}

// Clone deep-copies the map.
func (m Map) Clone() Map {
	out := Map{Version: m.Version, Fence: m.Fence, IONs: make(map[string][]string, len(m.IONs))}
	for app, addrs := range m.IONs {
		out.IONs[app] = append([]string(nil), addrs...)
	}
	return out
}

// For returns the addresses assigned to app (nil means direct access).
func (m Map) For(app string) []string { return m.IONs[app] }

// Apps returns the mapped application IDs in lexical order.
func (m Map) Apps() []string {
	out := make([]string, 0, len(m.IONs))
	for app := range m.IONs {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Bus is an in-process mapping distributor: the arbiter publishes, clients
// subscribe. Subscribers receive the current map immediately and every
// subsequent publication. Slow subscribers are skipped (they will catch up
// on the next publication), never blocked on.
type Bus struct {
	mu      sync.Mutex
	current Map
	fence   uint64
	subs    map[int]chan Map
	nextID  int
}

// NewBus returns a bus with an empty version-0 map.
func NewBus() *Bus {
	return &Bus{current: Map{IONs: map[string][]string{}}, subs: make(map[int]chan Map)}
}

// Current returns the latest published map.
func (b *Bus) Current() Map {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.current.Clone()
}

// Publish installs entries as the new map, bumping the version, and
// notifies subscribers. The entries are copied.
func (b *Bus) Publish(ions map[string][]string) Map {
	b.mu.Lock()
	defer b.mu.Unlock()
	next := Map{Version: b.current.Version + 1, Fence: b.fence, IONs: make(map[string][]string, len(ions))}
	for app, addrs := range ions {
		next.IONs[app] = append([]string(nil), addrs...)
	}
	b.current = next
	for _, ch := range b.subs {
		select {
		case ch <- next.Clone():
		default: // subscriber lagging; it will see a later version
		}
	}
	return next.Clone()
}

// Version returns the version the latest published map carries (the
// current epoch).
func (b *Bus) Version() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.current.Version
}

// Resume raises the bus's version floor to at least version without
// publishing. A recovered arbiter calls it with the last epoch its
// journal recorded so the next publication continues the pre-crash epoch
// sequence instead of reusing numbers clients may already hold.
func (b *Bus) Resume(version uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if version > b.current.Version {
		b.current.Version = version
	}
}

// Revoke raises the fence: every epoch strictly below fence is revoked,
// and every subsequent publication carries the new floor. Monotonic —
// a lower fence never lowers an established one.
func (b *Bus) Revoke(fence uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fence > b.fence {
		b.fence = fence
	}
}

// Subscribe returns a channel carrying map updates (buffered with the
// current map already queued) and a cancel function.
func (b *Bus) Subscribe() (<-chan Map, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	ch := make(chan Map, 4)
	ch <- b.current.Clone()
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if sub, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(sub)
		}
	}
	return ch, cancel
}

// FileSink mirrors every map published on bus into the file at path, the
// way the paper's policy solver hands decisions to GekkoFWD clients via a
// mapping file. It returns a stop function that flushes nothing further.
// Write errors are delivered to errs if non-nil (the production solver
// would log them).
func FileSink(bus *Bus, path string, errs chan<- error) (stop func()) {
	ch, cancel := bus.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range ch {
			if err := WriteFile(path, m); err != nil && errs != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// --- File-based distribution ----------------------------------------------

// ErrNoMapping indicates the mapping file does not exist yet.
var ErrNoMapping = errors.New("mapping: no mapping published")

// WriteFile atomically publishes m to path (write-temp + rename), the
// format GekkoFWD's solver uses to hand decisions to clients.
func WriteFile(path string, m Map) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("mapping: encode: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".mapping-*")
	if err != nil {
		return fmt.Errorf("mapping: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("mapping: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("mapping: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("mapping: rename: %w", err)
	}
	return nil
}

// ReadFile loads the mapping at path.
func ReadFile(path string) (Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Map{}, ErrNoMapping
		}
		return Map{}, fmt.Errorf("mapping: read: %w", err)
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return Map{}, fmt.Errorf("mapping: decode: %w", err)
	}
	if m.IONs == nil {
		m.IONs = map[string][]string{}
	}
	return m, nil
}

// Watcher polls a mapping file and delivers new versions, reproducing the
// GekkoFWD client thread that checks for mapping updates periodically
// (every 10 s by default in the paper; configurable here for tests).
type Watcher struct {
	path     string
	interval time.Duration

	mu        sync.Mutex
	seen      bool
	last      uint64
	lastFence uint64
	updates   chan Map
	stop      chan struct{}
	done      chan struct{}
}

// NewWatcher starts polling path every interval (≤0 selects the paper's
// 10 s default).
func NewWatcher(path string, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	w := &Watcher{
		path:     path,
		interval: interval,
		updates:  make(chan Map, 4),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

// Updates delivers each newly observed map version.
func (w *Watcher) Updates() <-chan Map { return w.updates }

// Stop terminates polling and closes Updates.
func (w *Watcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

func (w *Watcher) loop() {
	defer close(w.done)
	defer close(w.updates)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	w.poll()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.poll()
		}
	}
}

func (w *Watcher) poll() {
	m, err := ReadFile(w.path)
	if err != nil {
		return
	}
	// Epoch-aware staleness: the first observation always delivers, and
	// after that a map is new if either its version or its fence moved
	// forward. The fence clause matters after an arbiter recovery whose
	// journal lost its tail — the recovery publish can legitimately carry
	// a version the watcher has already seen, distinguished only by the
	// raised fence. (The old `w.last != 0` special-case also re-delivered
	// a version-0 map on every poll forever.)
	w.mu.Lock()
	stale := w.seen && m.Version <= w.last && m.Fence <= w.lastFence
	if !stale {
		w.seen = true
		w.last = m.Version
		w.lastFence = m.Fence
	}
	w.mu.Unlock()
	if stale {
		return
	}
	select {
	case w.updates <- m:
	case <-w.stop:
	}
}
