package mapping

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe()
	defer cancel()

	first := <-ch // initial (empty) map
	if first.Version != 0 || len(first.IONs) != 0 {
		t.Fatalf("initial map: %+v", first)
	}
	b.Publish(map[string][]string{"app": {"a:1", "b:2"}})
	got := <-ch
	if got.Version != 1 {
		t.Fatalf("version = %d", got.Version)
	}
	if addrs := got.For("app"); len(addrs) != 2 || addrs[0] != "a:1" {
		t.Fatalf("addrs = %v", addrs)
	}
	if got.For("other") != nil {
		t.Fatal("unmapped app should be nil (direct)")
	}
}

func TestBusCurrentIsClone(t *testing.T) {
	b := NewBus()
	b.Publish(map[string][]string{"app": {"x"}})
	m := b.Current()
	m.IONs["app"][0] = "mutated"
	if b.Current().IONs["app"][0] != "x" {
		t.Fatal("Current leaked internal state")
	}
}

func TestBusVersionsMonotone(t *testing.T) {
	b := NewBus()
	for i := 1; i <= 5; i++ {
		m := b.Publish(map[string][]string{})
		if m.Version != uint64(i) {
			t.Fatalf("version %d, want %d", m.Version, i)
		}
	}
}

func TestBusSlowSubscriberNotBlocking(t *testing.T) {
	b := NewBus()
	_, cancel := b.Subscribe() // never drained beyond buffer
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish(map[string][]string{})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
}

func TestBusCancelIdempotent(t *testing.T) {
	b := NewBus()
	_, cancel := b.Subscribe()
	cancel()
	cancel()
}

func TestMapApps(t *testing.T) {
	m := Map{IONs: map[string][]string{"b": nil, "a": {"x"}, "c": {"y"}}}
	apps := m.Apps()
	if len(apps) != 3 || apps[0] != "a" || apps[2] != "c" {
		t.Fatalf("apps = %v", apps)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.json")
	m := Map{Version: 7, IONs: map[string][]string{"app": {"h:1"}, "other": {}}}
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || len(got.For("app")) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("want ErrNoMapping, got %v", err)
	}
}

func TestWatcherDeliversVersions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.json")
	if err := WriteFile(path, Map{Version: 1, IONs: map[string][]string{"a": {"x"}}}); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(path, 5*time.Millisecond)
	defer w.Stop()

	select {
	case m := <-w.Updates():
		if m.Version != 1 {
			t.Fatalf("first update: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watcher never delivered the initial map")
	}

	if err := WriteFile(path, Map{Version: 2, IONs: map[string][]string{"a": nil}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-w.Updates():
		if m.Version != 2 {
			t.Fatalf("second update: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watcher never delivered the update")
	}
}

func TestWatcherIgnoresStaleVersions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.json")
	WriteFile(path, Map{Version: 5, IONs: map[string][]string{}})
	w := NewWatcher(path, 2*time.Millisecond)
	defer w.Stop()
	<-w.Updates()
	// Rewrite with the same version: no new delivery expected.
	WriteFile(path, Map{Version: 5, IONs: map[string][]string{"x": {"y"}}})
	select {
	case m := <-w.Updates():
		t.Fatalf("stale version redelivered: %+v", m)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestWatcherStopCloses(t *testing.T) {
	w := NewWatcher(filepath.Join(t.TempDir(), "absent.json"), time.Millisecond)
	w.Stop()
	if _, ok := <-w.Updates(); ok {
		t.Fatal("updates channel should be closed after Stop")
	}
	w.Stop() // idempotent
}

func TestFileSinkMirrorsBus(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sink.json")
	bus := NewBus()
	stop := FileSink(bus, path, nil)
	defer stop()
	bus.Publish(map[string][]string{"a": {"x:1"}})
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := ReadFile(path)
		if err == nil && m.Version >= 1 {
			if len(m.For("a")) != 1 {
				t.Fatalf("sunk map: %+v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never wrote the file")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFileSinkReportsWriteErrors(t *testing.T) {
	bus := NewBus()
	errs := make(chan error, 4)
	// Unwritable destination: directory does not exist.
	stop := FileSink(bus, filepath.Join(t.TempDir(), "no", "such", "dir", "m.json"), errs)
	defer stop()
	bus.Publish(map[string][]string{})
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error delivered")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write error never reported")
	}
}
