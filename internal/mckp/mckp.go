// Package mckp solves the Multiple-Choice Knapsack Problem the paper's
// arbitration policy is built on (§3.1): items are grouped into classes,
// exactly one item must be chosen from each class, the total weight must not
// exceed the capacity, and the total value is maximized.
//
// In the I/O-node allocation instance, each class is a ready-to-run
// application, an item is "run with w I/O nodes" (weight w), and the item's
// value is the bandwidth the application achieves with that many I/O nodes.
//
// The package provides four interchangeable solvers:
//
//   - SolveDP: the exact pseudo-polynomial dynamic program the paper uses,
//     O(W·ΣNᵢ) time, O(W·k) space.
//   - SolveBranchBound: exact depth-first search with a fractional upper
//     bound; competitive when the capacity is large but classes are few.
//   - SolveGreedy: the classic incremental-efficiency heuristic (start at
//     each class's lightest item, repeatedly apply the best marginal
//     upgrade). Not exact; used as an ablation baseline.
//   - SolveExhaustive: brute force over all combinations, for
//     cross-validation on small instances.
package mckp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is one choice within a class.
type Item struct {
	// Weight is the capacity consumed if this item is chosen (I/O nodes).
	Weight int
	// Value is the profit of choosing this item (bandwidth).
	Value float64
}

// Class is a group of items from which exactly one must be chosen.
type Class struct {
	// Label identifies the class (the application ID) in solutions and
	// error messages.
	Label string
	// Items are the class's choices. Order is preserved in Solution.Choice.
	Items []Item
}

// Problem is a complete MCKP instance.
type Problem struct {
	Classes  []Class
	Capacity int
}

// Solution is a feasible assignment of one item per class.
type Solution struct {
	// Choice[i] is the index into Classes[i].Items of the chosen item.
	Choice []int
	// Value is the total value of the chosen items.
	Value float64
	// Weight is the total weight of the chosen items.
	Weight int
}

// Errors returned by the solvers.
var (
	ErrNoClasses  = errors.New("mckp: problem has no classes")
	ErrEmptyClass = errors.New("mckp: class has no items")
	ErrInfeasible = errors.New("mckp: no feasible assignment fits the capacity")
)

// Validate checks structural well-formedness: at least one class, no empty
// classes, non-negative weights, and a non-negative capacity.
func (p Problem) Validate() error {
	if len(p.Classes) == 0 {
		return ErrNoClasses
	}
	if p.Capacity < 0 {
		return fmt.Errorf("mckp: negative capacity %d", p.Capacity)
	}
	for i, c := range p.Classes {
		if len(c.Items) == 0 {
			return fmt.Errorf("%w: class %d (%q)", ErrEmptyClass, i, c.Label)
		}
		for j, it := range c.Items {
			if it.Weight < 0 {
				return fmt.Errorf("mckp: class %d (%q) item %d has negative weight %d",
					i, c.Label, j, it.Weight)
			}
			if math.IsNaN(it.Value) || math.IsInf(it.Value, 0) {
				return fmt.Errorf("mckp: class %d (%q) item %d has non-finite value",
					i, c.Label, j)
			}
		}
	}
	return nil
}

// minWeights returns the per-class minimum item weight and their sum.
func (p Problem) minWeights() (mins []int, total int) {
	mins = make([]int, len(p.Classes))
	for i, c := range p.Classes {
		m := c.Items[0].Weight
		for _, it := range c.Items[1:] {
			if it.Weight < m {
				m = it.Weight
			}
		}
		mins[i] = m
		total += m
	}
	return mins, total
}

// verify re-checks a candidate solution (defence in depth for the solvers).
func (p Problem) verify(s Solution) error {
	if len(s.Choice) != len(p.Classes) {
		return fmt.Errorf("mckp: solution has %d choices for %d classes", len(s.Choice), len(p.Classes))
	}
	w, v := 0, 0.0
	for i, j := range s.Choice {
		if j < 0 || j >= len(p.Classes[i].Items) {
			return fmt.Errorf("mckp: choice %d out of range for class %d", j, i)
		}
		w += p.Classes[i].Items[j].Weight
		v += p.Classes[i].Items[j].Value
	}
	if w > p.Capacity {
		return fmt.Errorf("mckp: solution weight %d exceeds capacity %d", w, p.Capacity)
	}
	if w != s.Weight || math.Abs(v-s.Value) > 1e-6*(1+math.Abs(v)) {
		return fmt.Errorf("mckp: solution totals inconsistent (w=%d/%d v=%g/%g)", w, s.Weight, v, s.Value)
	}
	return nil
}

// SolveDP solves the problem exactly with the pseudo-polynomial dynamic
// program described in §3.1 of the paper: states are (class prefix, weight),
// and each class contributes one chosen item. Complexity O(W·ΣNᵢ).
func SolveDP(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if _, minTotal := p.minWeights(); minTotal > p.Capacity {
		return Solution{}, ErrInfeasible
	}

	const unset = -1
	k := len(p.Classes)
	// Capacity beyond the sum of per-class maximum weights is never
	// usable; clamping keeps the DP pseudo-polynomial in the *useful*
	// capacity (an ORACLE-sized pool costs no more than a saturated one).
	W := p.Capacity
	maxTotal := 0
	for _, c := range p.Classes {
		classMax := 0
		for _, it := range c.Items {
			if it.Weight > classMax {
				classMax = it.Weight
			}
		}
		maxTotal += classMax
	}
	if maxTotal < W {
		W = maxTotal
	}

	// dp[w] holds the best value achievable using the classes processed
	// so far with total weight exactly ≤ w tracked as "best at w".
	// choice[i][w] records the item picked for class i at state weight w.
	dp := make([]float64, W+1)
	reach := make([]bool, W+1)
	reach[0] = true
	choice := make([][]int16, k)
	from := make([][]int32, k)

	next := make([]float64, W+1)
	nextReach := make([]bool, W+1)

	for i, c := range p.Classes {
		choice[i] = make([]int16, W+1)
		from[i] = make([]int32, W+1)
		for w := range next {
			next[w] = 0
			nextReach[w] = false
			choice[i][w] = unset
			from[i][w] = unset
		}
		for w := 0; w <= W; w++ {
			if !reach[w] {
				continue
			}
			base := dp[w]
			for j, it := range c.Items {
				nw := w + it.Weight
				if nw > W {
					continue
				}
				nv := base + it.Value
				if !nextReach[nw] || nv > next[nw] {
					nextReach[nw] = true
					next[nw] = nv
					choice[i][nw] = int16(j)
					from[i][nw] = int32(w)
				}
			}
		}
		dp, next = next, dp
		reach, nextReach = nextReach, reach
	}

	// Find the best final state.
	bestW, found := 0, false
	for w := 0; w <= W; w++ {
		if reach[w] && (!found || dp[w] > dp[bestW]) {
			bestW, found = w, true
		}
	}
	if !found {
		return Solution{}, ErrInfeasible
	}

	// Reconstruct choices class by class.
	sol := Solution{Choice: make([]int, k), Value: dp[bestW], Weight: 0}
	w := bestW
	for i := k - 1; i >= 0; i-- {
		j := choice[i][w]
		if j == unset {
			return Solution{}, fmt.Errorf("mckp: internal reconstruction failure at class %d weight %d", i, w)
		}
		sol.Choice[i] = int(j)
		w = int(from[i][w])
	}
	for i, j := range sol.Choice {
		sol.Weight += p.Classes[i].Items[j].Weight
	}
	if err := p.verify(sol); err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// SolveExhaustive enumerates every combination. It is exponential and
// intended only for cross-validating other solvers on small instances.
func SolveExhaustive(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	var (
		best      Solution
		bestFound bool
		cur       = make([]int, len(p.Classes))
	)
	var rec func(i, weight int, value float64)
	rec = func(i, weight int, value float64) {
		if weight > p.Capacity {
			return
		}
		if i == len(p.Classes) {
			if !bestFound || value > best.Value {
				best = Solution{Choice: append([]int(nil), cur...), Value: value, Weight: weight}
				bestFound = true
			}
			return
		}
		for j, it := range p.Classes[i].Items {
			cur[i] = j
			rec(i+1, weight+it.Weight, value+it.Value)
		}
	}
	rec(0, 0, 0)
	if !bestFound {
		return Solution{}, ErrInfeasible
	}
	if err := p.verify(best); err != nil {
		return Solution{}, err
	}
	return best, nil
}

// SolveGreedy starts every class at its lightest (tie: most valuable) item
// and repeatedly applies the single upgrade with the best positive marginal
// efficiency Δvalue/Δweight that still fits. It is fast and typically close
// to optimal, but not exact — kept as the ablation baseline for the DP.
func SolveGreedy(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	mins, minTotal := p.minWeights()
	if minTotal > p.Capacity {
		return Solution{}, ErrInfeasible
	}

	sol := Solution{Choice: make([]int, len(p.Classes))}
	for i, c := range p.Classes {
		bestJ := -1
		for j, it := range c.Items {
			if it.Weight != mins[i] {
				continue
			}
			if bestJ == -1 || it.Value > c.Items[bestJ].Value {
				bestJ = j
			}
		}
		sol.Choice[i] = bestJ
		sol.Weight += c.Items[bestJ].Weight
		sol.Value += c.Items[bestJ].Value
	}

	for {
		bestClass, bestItem := -1, -1
		bestEff := 0.0
		for i, c := range p.Classes {
			cur := c.Items[sol.Choice[i]]
			for j, it := range c.Items {
				dw := it.Weight - cur.Weight
				dv := it.Value - cur.Value
				if dv <= 0 || sol.Weight+dw > p.Capacity {
					continue
				}
				var eff float64
				if dw <= 0 {
					// Strictly better at no extra weight: take immediately.
					eff = math.Inf(1)
				} else {
					eff = dv / float64(dw)
				}
				if eff > bestEff {
					bestEff, bestClass, bestItem = eff, i, j
				}
			}
		}
		if bestClass < 0 {
			break
		}
		cur := p.Classes[bestClass].Items[sol.Choice[bestClass]]
		it := p.Classes[bestClass].Items[bestItem]
		sol.Weight += it.Weight - cur.Weight
		sol.Value += it.Value - cur.Value
		sol.Choice[bestClass] = bestItem
	}
	if err := p.verify(sol); err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// SolveBranchBound solves the problem exactly with depth-first search over
// classes ordered by decreasing value spread, pruned by an optimistic bound
// (each remaining class contributes its maximum value regardless of
// weight, as long as its minimum weight still fits).
func SolveBranchBound(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	mins, minTotal := p.minWeights()
	if minTotal > p.Capacity {
		return Solution{}, ErrInfeasible
	}

	k := len(p.Classes)
	// Process classes in decreasing max-min value spread so impactful
	// decisions come first and the bound tightens quickly.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	spread := make([]float64, k)
	maxVal := make([]float64, k)
	for i, c := range p.Classes {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, it := range c.Items {
			lo = math.Min(lo, it.Value)
			hi = math.Max(hi, it.Value)
		}
		spread[i] = hi - lo
		maxVal[i] = hi
	}
	sort.Slice(order, func(a, b int) bool { return spread[order[a]] > spread[order[b]] })

	// Suffix sums over the processing order for bounding.
	sufMaxVal := make([]float64, k+1)
	sufMinW := make([]int, k+1)
	for i := k - 1; i >= 0; i-- {
		sufMaxVal[i] = sufMaxVal[i+1] + maxVal[order[i]]
		sufMinW[i] = sufMinW[i+1] + mins[order[i]]
	}

	best := Solution{Choice: make([]int, k), Value: math.Inf(-1)}
	cur := make([]int, k)
	var rec func(pos, weight int, value float64)
	rec = func(pos, weight int, value float64) {
		if weight+sufMinW[pos] > p.Capacity {
			return // cannot even fit the lightest remaining items
		}
		if value+sufMaxVal[pos] <= best.Value {
			return // optimistic bound cannot beat the incumbent
		}
		if pos == k {
			best.Value = value
			best.Weight = weight
			copy(best.Choice, cur)
			return
		}
		ci := order[pos]
		// Try items in decreasing value so good incumbents appear early.
		idx := byValueDesc(p.Classes[ci].Items)
		for _, j := range idx {
			it := p.Classes[ci].Items[j]
			cur[ci] = j
			rec(pos+1, weight+it.Weight, value+it.Value)
		}
	}
	rec(0, 0, 0)
	if math.IsInf(best.Value, -1) {
		return Solution{}, ErrInfeasible
	}
	if err := p.verify(best); err != nil {
		return Solution{}, err
	}
	return best, nil
}

func byValueDesc(items []Item) []int {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return items[idx[a]].Value > items[idx[b]].Value })
	return idx
}
