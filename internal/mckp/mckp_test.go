package mckp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func simpleProblem() Problem {
	return Problem{
		Capacity: 5,
		Classes: []Class{
			{Label: "a", Items: []Item{{Weight: 0, Value: 1}, {Weight: 2, Value: 6}, {Weight: 4, Value: 7}}},
			{Label: "b", Items: []Item{{Weight: 0, Value: 2}, {Weight: 1, Value: 3}, {Weight: 3, Value: 9}}},
			{Label: "c", Items: []Item{{Weight: 0, Value: 0}, {Weight: 2, Value: 5}}},
		},
	}
}

func TestSolveDPSimple(t *testing.T) {
	// Optimal: a→(2,6), b→(3,9), c→(0,0): value 15 weight 5.
	sol, err := SolveDP(simpleProblem())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 15 || sol.Weight != 5 {
		t.Fatalf("DP: value=%v weight=%v, want 15/5 (%v)", sol.Value, sol.Weight, sol.Choice)
	}
}

func TestAllSolversAgreeSimple(t *testing.T) {
	p := simpleProblem()
	want, err := SolveExhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range map[string]func(Problem) (Solution, error){
		"dp": SolveDP, "bb": SolveBranchBound,
	} {
		got, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got.Value-want.Value) > 1e-9 {
			t.Errorf("%s value %v != exhaustive %v", name, got.Value, want.Value)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (Problem{}).Validate(); err != ErrNoClasses {
		t.Errorf("no classes: %v", err)
	}
	p := Problem{Capacity: 1, Classes: []Class{{Label: "x"}}}
	if err := p.Validate(); err == nil {
		t.Error("empty class should fail validation")
	}
	p = Problem{Capacity: -1, Classes: []Class{{Label: "x", Items: []Item{{Weight: 0}}}}}
	if err := p.Validate(); err == nil {
		t.Error("negative capacity should fail validation")
	}
	p = Problem{Capacity: 1, Classes: []Class{{Label: "x", Items: []Item{{Weight: -1}}}}}
	if err := p.Validate(); err == nil {
		t.Error("negative weight should fail validation")
	}
	p = Problem{Capacity: 1, Classes: []Class{{Label: "x", Items: []Item{{Weight: 0, Value: math.NaN()}}}}}
	if err := p.Validate(); err == nil {
		t.Error("NaN value should fail validation")
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{
		Capacity: 1,
		Classes: []Class{
			{Label: "a", Items: []Item{{Weight: 1, Value: 1}}},
			{Label: "b", Items: []Item{{Weight: 1, Value: 1}}},
		},
	}
	for name, solve := range map[string]func(Problem) (Solution, error){
		"dp": SolveDP, "bb": SolveBranchBound, "greedy": SolveGreedy, "exh": SolveExhaustive,
	} {
		if _, err := solve(p); err != ErrInfeasible {
			t.Errorf("%s: want ErrInfeasible, got %v", name, err)
		}
	}
}

func TestZeroCapacityFeasible(t *testing.T) {
	p := Problem{
		Capacity: 0,
		Classes: []Class{
			{Label: "a", Items: []Item{{Weight: 0, Value: 3}, {Weight: 1, Value: 10}}},
		},
	}
	sol, err := SolveDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 3 || sol.Weight != 0 {
		t.Fatalf("zero capacity: %+v", sol)
	}
}

func TestSingleClass(t *testing.T) {
	p := Problem{
		Capacity: 8,
		Classes: []Class{
			{Label: "only", Items: []Item{{Weight: 0, Value: 241.3}, {Weight: 2, Value: 48.1}, {Weight: 8, Value: 200}}},
		},
	}
	sol, err := SolveDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != 0 {
		t.Fatalf("should pick the direct-access item, got %v", sol.Choice)
	}
}

func randomProblem(rng *rand.Rand, maxClasses, maxItems, maxWeight int) Problem {
	k := rng.Intn(maxClasses) + 1
	p := Problem{Capacity: rng.Intn(maxWeight * k)}
	for i := 0; i < k; i++ {
		n := rng.Intn(maxItems) + 1
		c := Class{Label: string(rune('a' + i))}
		for j := 0; j < n; j++ {
			c.Items = append(c.Items, Item{
				Weight: rng.Intn(maxWeight + 1),
				Value:  float64(rng.Intn(1000)),
			})
		}
		p.Classes = append(p.Classes, c)
	}
	return p
}

// TestDPMatchesExhaustiveRandom cross-validates the DP against brute force
// on 300 random small instances.
func TestDPMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 5, 4, 6)
		want, errE := SolveExhaustive(p)
		got, errD := SolveDP(p)
		if (errE == nil) != (errD == nil) {
			t.Fatalf("trial %d: error mismatch exh=%v dp=%v (%+v)", trial, errE, errD, p)
		}
		if errE != nil {
			continue
		}
		if math.Abs(want.Value-got.Value) > 1e-9 {
			t.Fatalf("trial %d: dp value %v != exhaustive %v (%+v)", trial, got.Value, want.Value, p)
		}
	}
}

// TestBranchBoundMatchesDPRandom cross-validates branch-and-bound against
// the DP on larger random instances.
func TestBranchBoundMatchesDPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 8, 5, 8)
		want, errD := SolveDP(p)
		got, errB := SolveBranchBound(p)
		if (errD == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch dp=%v bb=%v", trial, errD, errB)
		}
		if errD != nil {
			continue
		}
		if math.Abs(want.Value-got.Value) > 1e-9 {
			t.Fatalf("trial %d: bb value %v != dp %v (%+v)", trial, got.Value, want.Value, p)
		}
	}
}

// TestGreedyNeverBeatsDPAndIsFeasible: the heuristic must stay within the
// optimum and produce feasible solutions.
func TestGreedyNeverBeatsDPAndIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	worst := 1.0
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 8, 5, 8)
		opt, errD := SolveDP(p)
		grd, errG := SolveGreedy(p)
		if (errD == nil) != (errG == nil) {
			t.Fatalf("trial %d: error mismatch dp=%v greedy=%v", trial, errD, errG)
		}
		if errD != nil {
			continue
		}
		if grd.Value > opt.Value+1e-9 {
			t.Fatalf("trial %d: greedy %v beats optimal %v", trial, grd.Value, opt.Value)
		}
		if grd.Weight > p.Capacity {
			t.Fatalf("trial %d: greedy overweight", trial)
		}
		if opt.Value > 0 {
			if r := grd.Value / opt.Value; r < worst {
				worst = r
			}
		}
	}
	t.Logf("worst greedy/optimal ratio over 200 instances: %.3f", worst)
}

// TestDPMonotoneInCapacity: the optimum value never decreases as the
// capacity grows.
func TestDPMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 6, 4, 6)
		// Ensure feasibility at capacity 0 by adding a zero-weight item.
		for i := range p.Classes {
			p.Classes[i].Items = append(p.Classes[i].Items, Item{Weight: 0, Value: 0})
		}
		prev := math.Inf(-1)
		for w := 0; w <= 30; w += 3 {
			p.Capacity = w
			sol, err := SolveDP(p)
			if err != nil {
				t.Fatalf("trial %d w=%d: %v", trial, w, err)
			}
			if sol.Value < prev-1e-9 {
				t.Fatalf("trial %d: optimum decreased from %v to %v at w=%d", trial, prev, sol.Value, w)
			}
			prev = sol.Value
		}
	}
}

// TestDPChoosesOnePerClass is the structural MCKP invariant, checked via
// testing/quick over random instances.
func TestDPChoosesOnePerClass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		p := randomProblem(rand.New(rand.NewSource(seed^rng.Int63())), 6, 5, 6)
		sol, err := SolveDP(p)
		if err != nil {
			return err == ErrInfeasible
		}
		if len(sol.Choice) != len(p.Classes) {
			return false
		}
		for i, j := range sol.Choice {
			if j < 0 || j >= len(p.Classes[i].Items) {
				return false
			}
		}
		return sol.Weight <= p.Capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperScaleInstance: the §5.3 sizing example — 512 concurrent jobs and
// 256 I/O nodes — must solve exactly and quickly (the paper reports 2.7 s;
// the DP here is far faster, see BenchmarkSolveDPPaperScale).
func TestPaperScaleInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Problem{Capacity: 256}
	for i := 0; i < 512; i++ {
		c := Class{Label: "job"}
		for _, w := range []int{0, 1, 2, 4, 8} {
			c.Items = append(c.Items, Item{Weight: w, Value: rng.Float64() * 5000})
		}
		p.Classes = append(p.Classes, c)
	}
	sol, err := SolveDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight > 256 {
		t.Fatalf("overweight: %d", sol.Weight)
	}
	// Sanity: with capacity for one node per two jobs, value must beat
	// the all-zero baseline.
	baseline := 0.0
	for _, c := range p.Classes {
		baseline += c.Items[0].Value
	}
	if sol.Value <= baseline {
		t.Fatalf("DP value %v not above zero-alloc baseline %v", sol.Value, baseline)
	}
}

func TestGreedyUpgradePathSimple(t *testing.T) {
	// Greedy should find the optimum here: one dominant upgrade chain.
	p := Problem{
		Capacity: 8,
		Classes: []Class{
			{Label: "ior", Items: []Item{{Weight: 0, Value: 82.4}, {Weight: 1, Value: 268.4}, {Weight: 8, Value: 5089.9}}},
		},
	}
	sol, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != 2 {
		t.Fatalf("greedy should reach the 8-node item, got %v", sol.Choice)
	}
}

// TestHugeCapacityClamped: a pool far larger than any possible allocation
// must not blow up the DP (capacity is clamped to the sum of per-class
// maximum weights) and must yield the per-class maxima.
func TestHugeCapacityClamped(t *testing.T) {
	p := Problem{
		Capacity: 1_000_000_000,
		Classes: []Class{
			{Label: "a", Items: []Item{{Weight: 0, Value: 1}, {Weight: 8, Value: 10}}},
			{Label: "b", Items: []Item{{Weight: 2, Value: 5}, {Weight: 4, Value: 7}}},
		},
	}
	start := time.Now()
	sol, err := SolveDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("huge capacity not clamped: took %v", elapsed)
	}
	if sol.Value != 17 {
		t.Fatalf("value = %v, want 17", sol.Value)
	}
}
