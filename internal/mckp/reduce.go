package mckp

import "sort"

// Reduce returns an equivalent problem with dominated items removed from
// every class: an item is dominated when another item in its class has
// weight ≤ it and value ≥ it (classic MCKP preprocessing). The optimum
// value is unchanged; solving the reduced problem is faster because ΣNᵢ
// shrinks. Reduced solutions can be mapped back with MapChoice.
//
// In the I/O-node instance this prunes allocations the policy could never
// pick — e.g. a bandwidth curve's descending tail, where more I/O nodes
// yield less bandwidth than a cheaper option.
func Reduce(p Problem) (Problem, *Reduction) {
	out := Problem{Capacity: p.Capacity, Classes: make([]Class, len(p.Classes))}
	red := &Reduction{original: p, keep: make([][]int, len(p.Classes))}
	for ci, c := range p.Classes {
		idx := make([]int, len(c.Items))
		for i := range idx {
			idx[i] = i
		}
		// Sort by weight ascending, value descending for equal weights.
		sort.Slice(idx, func(a, b int) bool {
			ia, ib := c.Items[idx[a]], c.Items[idx[b]]
			if ia.Weight != ib.Weight {
				return ia.Weight < ib.Weight
			}
			return ia.Value > ib.Value
		})
		var keep []int
		bestValue := 0.0
		for _, i := range idx {
			it := c.Items[i]
			if len(keep) > 0 && it.Value <= bestValue {
				continue // dominated by a lighter-or-equal, better item
			}
			keep = append(keep, i)
			bestValue = it.Value
		}
		items := make([]Item, len(keep))
		for k, i := range keep {
			items[k] = c.Items[i]
		}
		out.Classes[ci] = Class{Label: c.Label, Items: items}
		red.keep[ci] = keep
	}
	return out, red
}

// Reduction maps solutions of a reduced problem back to the original.
type Reduction struct {
	original Problem
	keep     [][]int
}

// MapChoice rewrites a reduced solution's choices into original item
// indices. The value and weight are unchanged.
func (r *Reduction) MapChoice(s Solution) Solution {
	mapped := Solution{Value: s.Value, Weight: s.Weight, Choice: make([]int, len(s.Choice))}
	for ci, j := range s.Choice {
		mapped.Choice[ci] = r.keep[ci][j]
	}
	return mapped
}
