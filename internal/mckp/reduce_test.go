package mckp

import (
	"math"
	"math/rand"
	"testing"
)

func TestReduceRemovesDominated(t *testing.T) {
	p := Problem{
		Capacity: 10,
		Classes: []Class{{
			Label: "c",
			Items: []Item{
				{Weight: 0, Value: 100}, // dominates everything below
				{Weight: 1, Value: 90},  // dominated (heavier, worse)
				{Weight: 2, Value: 150},
				{Weight: 4, Value: 150}, // dominated by the 2/150 item
				{Weight: 8, Value: 200},
			},
		}},
	}
	r, _ := Reduce(p)
	if got := len(r.Classes[0].Items); got != 3 {
		t.Fatalf("want 3 surviving items, got %d: %+v", got, r.Classes[0].Items)
	}
}

// TestReducePreservesOptimum: the reduced problem has the same optimal
// value as the original, and the mapped choice is valid in the original.
func TestReducePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 6, 6, 8)
		orig, errO := SolveDP(p)
		r, red := Reduce(p)
		got, errR := SolveDP(r)
		if (errO == nil) != (errR == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errO, errR)
		}
		if errO != nil {
			continue
		}
		if math.Abs(orig.Value-got.Value) > 1e-9 {
			t.Fatalf("trial %d: reduction changed optimum %v → %v", trial, orig.Value, got.Value)
		}
		mapped := red.MapChoice(got)
		if err := p.verify(mapped); err != nil {
			t.Fatalf("trial %d: mapped solution invalid: %v", trial, err)
		}
	}
}

func TestReduceNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 5, 8, 6)
		r, _ := Reduce(p)
		for ci := range p.Classes {
			if len(r.Classes[ci].Items) > len(p.Classes[ci].Items) {
				t.Fatal("reduction grew a class")
			}
			if len(r.Classes[ci].Items) == 0 {
				t.Fatal("reduction emptied a class")
			}
		}
	}
}

func TestReduceOnAppCurves(t *testing.T) {
	// S3D's curve (best at 0 IONs, descending tail) should reduce to a
	// single item: every forwarding option is dominated by direct access.
	p := Problem{
		Capacity: 8,
		Classes: []Class{{
			Label: "S3D",
			Items: []Item{
				{Weight: 0, Value: 241.3},
				{Weight: 1, Value: 60.0},
				{Weight: 2, Value: 48.1},
				{Weight: 4, Value: 150.0},
				{Weight: 8, Value: 200.0},
			},
		}},
	}
	r, _ := Reduce(p)
	if len(r.Classes[0].Items) != 1 || r.Classes[0].Items[0].Weight != 0 {
		t.Fatalf("S3D should reduce to the direct-access item: %+v", r.Classes[0].Items)
	}
}
