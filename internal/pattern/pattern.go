// Package pattern models application I/O access patterns the way the paper
// characterizes them: file layout (file-per-process vs. shared file),
// request spatiality (contiguous vs. 1D-strided), request size, and job
// geometry (compute nodes and client processes). It also enumerates the
// 189-scenario factorial surveyed with FORGE on MareNostrum 4 (§2) and the
// eight highlighted patterns of Figure 1 / Table 2.
package pattern

import (
	"fmt"

	"repro/internal/units"
)

// Layout is the file approach of an access pattern.
type Layout int

const (
	// FilePerProcess has each client process write to its own file.
	FilePerProcess Layout = iota
	// SharedFile has all client processes write to one shared file.
	SharedFile
)

func (l Layout) String() string {
	switch l {
	case FilePerProcess:
		return "file-per-process"
	case SharedFile:
		return "shared"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Spatiality describes how consecutive requests of one process relate.
type Spatiality int

const (
	// Contiguous requests touch adjacent offsets.
	Contiguous Spatiality = iota
	// Strided1D requests are interleaved across processes with a fixed
	// stride (each process owns every P-th block of the shared file).
	Strided1D
)

func (s Spatiality) String() string {
	switch s {
	case Contiguous:
		return "contiguous"
	case Strided1D:
		return "1d-strided"
	default:
		return fmt.Sprintf("Spatiality(%d)", int(s))
	}
}

// Operation distinguishes reads from writes.
type Operation int

const (
	Write Operation = iota
	Read
)

func (o Operation) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Pattern is a fully specified access pattern, the unit of characterization
// used by the performance model and the arbitration policies.
type Pattern struct {
	Nodes       int        // compute nodes used by the job
	ProcsPerNod int        // client processes per compute node
	Layout      Layout     // file approach
	Spatiality  Spatiality // request spatiality
	RequestSize int64      // bytes per request
	Operation   Operation  // write or read
}

// Processes returns the total number of client processes.
func (p Pattern) Processes() int { return p.Nodes * p.ProcsPerNod }

// Validate reports whether the pattern is well formed.
func (p Pattern) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("pattern: nodes must be positive, got %d", p.Nodes)
	case p.ProcsPerNod <= 0:
		return fmt.Errorf("pattern: processes per node must be positive, got %d", p.ProcsPerNod)
	case p.RequestSize <= 0:
		return fmt.Errorf("pattern: request size must be positive, got %d", p.RequestSize)
	case p.Layout == FilePerProcess && p.Spatiality == Strided1D:
		return fmt.Errorf("pattern: file-per-process implies contiguous access")
	}
	return nil
}

// String renders the pattern compactly, e.g.
// "32n×48p shared 1d-strided 512KiB write".
func (p Pattern) String() string {
	return fmt.Sprintf("%dn×%dp %s %s %s %s",
		p.Nodes, p.ProcsPerNod, p.Layout, p.Spatiality,
		units.FormatBytes(p.RequestSize), p.Operation)
}

// MN4 survey factorial (§2): 8/16/32 nodes × 12/24/48 processes per node ×
// {file-per-process contiguous, shared contiguous, shared 1D-strided} ×
// 7 request sizes = 3·3·3·7 = 189 scenarios.
var (
	mn4Nodes    = []int{8, 16, 32}
	mn4PPN      = []int{12, 24, 48}
	mn4ReqSizes = []int64{
		32 * units.KiB, 128 * units.KiB, 512 * units.KiB,
		1 * units.MiB, 4 * units.MiB, 6 * units.MiB, 8 * units.MiB,
	}
)

// MN4Survey returns the 189 write scenarios covered with FORGE on
// MareNostrum 4 (paper §2), in a stable deterministic order.
func MN4Survey() []Pattern {
	out := make([]Pattern, 0, 189)
	for _, n := range mn4Nodes {
		for _, ppn := range mn4PPN {
			for _, sz := range mn4ReqSizes {
				out = append(out,
					Pattern{Nodes: n, ProcsPerNod: ppn, Layout: FilePerProcess, Spatiality: Contiguous, RequestSize: sz, Operation: Write},
					Pattern{Nodes: n, ProcsPerNod: ppn, Layout: SharedFile, Spatiality: Contiguous, RequestSize: sz, Operation: Write},
					Pattern{Nodes: n, ProcsPerNod: ppn, Layout: SharedFile, Spatiality: Strided1D, RequestSize: sz, Operation: Write},
				)
			}
		}
	}
	return out
}

// Figure1Patterns returns the eight patterns highlighted in Figure 1,
// keyed by their Table 2 label.
func Figure1Patterns() map[string]Pattern {
	return map[string]Pattern{
		"A": {Nodes: 32, ProcsPerNod: 48, Layout: FilePerProcess, Spatiality: Contiguous, RequestSize: 1024 * units.KiB, Operation: Write},
		"B": {Nodes: 32, ProcsPerNod: 48, Layout: FilePerProcess, Spatiality: Contiguous, RequestSize: 128 * units.KiB, Operation: Write},
		"C": {Nodes: 32, ProcsPerNod: 48, Layout: SharedFile, Spatiality: Contiguous, RequestSize: 1024 * units.KiB, Operation: Write},
		"D": {Nodes: 16, ProcsPerNod: 12, Layout: SharedFile, Spatiality: Strided1D, RequestSize: 128 * units.KiB, Operation: Write},
		"E": {Nodes: 8, ProcsPerNod: 24, Layout: SharedFile, Spatiality: Strided1D, RequestSize: 1024 * units.KiB, Operation: Write},
		"F": {Nodes: 16, ProcsPerNod: 24, Layout: SharedFile, Spatiality: Contiguous, RequestSize: 128 * units.KiB, Operation: Write},
		"G": {Nodes: 32, ProcsPerNod: 12, Layout: SharedFile, Spatiality: Strided1D, RequestSize: 512 * units.KiB, Operation: Write},
		"H": {Nodes: 8, ProcsPerNod: 48, Layout: SharedFile, Spatiality: Contiguous, RequestSize: 4096 * units.KiB, Operation: Write},
	}
}

// IONOptions returns the numbers of I/O nodes a job with the given compute
// node count may choose from (paper §5.1): zero (direct PFS access, unless
// disallowed) plus the powers of two that divide the node count, capped at
// max. The returned slice is sorted ascending.
func IONOptions(nodes, max int, allowZero bool) []int {
	var out []int
	if allowZero {
		out = append(out, 0)
	}
	for w := 1; w <= max; w *= 2 {
		if nodes%w == 0 {
			out = append(out, w)
		}
	}
	return out
}
