package pattern

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestMN4SurveyCount(t *testing.T) {
	ps := MN4Survey()
	if len(ps) != 189 {
		t.Fatalf("survey must have 189 scenarios (paper §2), got %d", len(ps))
	}
}

func TestMN4SurveyAllValid(t *testing.T) {
	for _, p := range MN4Survey() {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid scenario %v: %v", p, err)
		}
		if p.Operation != Write {
			t.Fatalf("survey covers writes only, got %v", p)
		}
	}
}

func TestMN4SurveyUnique(t *testing.T) {
	seen := make(map[Pattern]bool)
	for _, p := range MN4Survey() {
		if seen[p] {
			t.Fatalf("duplicate scenario %v", p)
		}
		seen[p] = true
	}
}

func TestMN4SurveyComposition(t *testing.T) {
	var fpp, sharedContig, sharedStrided int
	for _, p := range MN4Survey() {
		switch {
		case p.Layout == FilePerProcess:
			fpp++
		case p.Spatiality == Contiguous:
			sharedContig++
		default:
			sharedStrided++
		}
	}
	if fpp != 63 || sharedContig != 63 || sharedStrided != 63 {
		t.Fatalf("composition: fpp=%d sharedContig=%d sharedStrided=%d, want 63 each",
			fpp, sharedContig, sharedStrided)
	}
}

func TestMN4SurveyDeterministic(t *testing.T) {
	a, b := MN4Survey(), MN4Survey()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("survey order not deterministic at %d", i)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Pattern{
		{Nodes: 0, ProcsPerNod: 1, RequestSize: 1},
		{Nodes: 1, ProcsPerNod: 0, RequestSize: 1},
		{Nodes: 1, ProcsPerNod: 1, RequestSize: 0},
		{Nodes: 1, ProcsPerNod: 1, RequestSize: 1, Layout: FilePerProcess, Spatiality: Strided1D},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("pattern %v should be invalid", p)
		}
	}
	good := Pattern{Nodes: 8, ProcsPerNod: 12, RequestSize: units.MiB, Layout: SharedFile, Spatiality: Strided1D}
	if err := good.Validate(); err != nil {
		t.Errorf("pattern %v should be valid: %v", good, err)
	}
}

func TestFigure1PatternsMatchTable2(t *testing.T) {
	ps := Figure1Patterns()
	if len(ps) != 8 {
		t.Fatalf("want 8 patterns, got %d", len(ps))
	}
	// Spot-check Table 2 rows.
	a := ps["A"]
	if a.Nodes != 32 || a.Processes() != 1536 || a.Layout != FilePerProcess || a.RequestSize != 1024*units.KiB {
		t.Fatalf("pattern A mismatch: %+v", a)
	}
	d := ps["D"]
	if d.Nodes != 16 || d.Processes() != 192 || d.Spatiality != Strided1D || d.RequestSize != 128*units.KiB {
		t.Fatalf("pattern D mismatch: %+v", d)
	}
	h := ps["H"]
	if h.Nodes != 8 || h.Processes() != 384 || h.RequestSize != 4096*units.KiB {
		t.Fatalf("pattern H mismatch: %+v", h)
	}
	for label, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("pattern %s invalid: %v", label, err)
		}
	}
}

func TestIONOptions(t *testing.T) {
	got := IONOptions(32, 8, true)
	want := []int{0, 1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("IONOptions(32,8,true) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IONOptions(32,8,true) = %v, want %v", got, want)
		}
	}
	// 12 nodes: divisible by 1, 2, 4 but not 8.
	got = IONOptions(12, 8, false)
	want = []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("IONOptions(12,8,false) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IONOptions(12,8,false) = %v, want %v", got, want)
		}
	}
}

func TestIONOptionsSortedAndDivisible(t *testing.T) {
	for nodes := 1; nodes <= 64; nodes++ {
		opts := IONOptions(nodes, 16, true)
		prev := -1
		for _, w := range opts {
			if w <= prev {
				t.Fatalf("options not strictly ascending for %d nodes: %v", nodes, opts)
			}
			prev = w
			if w > 0 && nodes%w != 0 {
				t.Fatalf("option %d does not divide %d nodes", w, nodes)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	p := Pattern{Nodes: 32, ProcsPerNod: 48, Layout: SharedFile, Spatiality: Strided1D, RequestSize: 512 * units.KiB, Operation: Write}
	s := p.String()
	for _, frag := range []string{"32n", "48p", "shared", "1d-strided", "512.00 KiB", "write"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
	if FilePerProcess.String() != "file-per-process" || Contiguous.String() != "contiguous" || Read.String() != "read" {
		t.Error("enum stringers wrong")
	}
	if !strings.Contains(Layout(9).String(), "Layout") || !strings.Contains(Spatiality(9).String(), "Spatiality") {
		t.Error("unknown enum stringers should be explicit")
	}
}
