package perfmodel

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// AppSpec describes one of the paper's evaluation applications (Table 3):
// its job geometry, transferred volume, and its measured bandwidth curve
// over {0,1,2,4,8} I/O nodes (Figure 5).
//
// Curve values are digitized from the paper where it pins them down
// (Table 4 and the Figure 9 discussion give exact MB/s figures) and read
// off the Figure 5 plots elsewhere; see EXPERIMENTS.md for the anchor list.
type AppSpec struct {
	Label     string
	Name      string
	Nodes     int
	Processes int
	// WriteBytes and ReadBytes are the paper's Table 3 volumes.
	WriteBytes int64
	ReadBytes  int64
	Curve      Curve
}

// TotalBytes returns the application's total transferred volume.
func (a AppSpec) TotalBytes() int64 { return a.WriteBytes + a.ReadBytes }

// Runtime returns the application's I/O makespan when it achieves the
// bandwidth its curve reports for k I/O nodes (volume / bandwidth).
func (a AppSpec) Runtime(k int) (secs float64, ok bool) {
	bw, ok := a.Curve.At(k)
	if !ok || bw <= 0 {
		return 0, false
	}
	return float64(a.TotalBytes()) / float64(bw), true
}

func gb(x float64) int64 { return int64(x * float64(units.GB)) }

func curveMBps(v0, v1, v2, v4, v8 float64) Curve {
	return NewCurve(
		Point{IONs: 0, Bandwidth: units.BandwidthFromMBps(v0)},
		Point{IONs: 1, Bandwidth: units.BandwidthFromMBps(v1)},
		Point{IONs: 2, Bandwidth: units.BandwidthFromMBps(v2)},
		Point{IONs: 4, Bandwidth: units.BandwidthFromMBps(v4)},
		Point{IONs: 8, Bandwidth: units.BandwidthFromMBps(v8)},
	)
}

// EvaluationApps returns the nine applications of the paper's Table 3 with
// their Figure 5 bandwidth curves, keyed in a stable order by label.
//
// Exact anchors from the paper:
//   - Table 4 (12 I/O nodes): BT-C 0→195.7, 1→77.6; BT-D 1→597.2, 2→594.2;
//     IOR-MPI 1→268.4, 8→5089.9 (the text's 18.96× claim); POSIX-L
//     2→411.9; MAD 0→255.9, 1→77.8; S3D 0→241.3, 2→48.1.
//   - §5.3: HACC 1→987.3, 8→3850.7 (the 3.9× claim); POSIX-L 8→1963.9.
//
// The remaining points are read from the Figure 5 plots. The curves
// deliberately give the six-application set of §5.2 an ORACLE weight of
// exactly 36 (8+8+8+8+4+0), matching the paper's observation that MCKP
// reaches the ORACLE bound only once 36 I/O nodes are available.
func EvaluationApps() []AppSpec {
	apps := []AppSpec{
		{
			Label: "BT-C", Name: "NAS BT-IO (Class C)",
			Nodes: 32, Processes: 128,
			WriteBytes: gb(6.3), ReadBytes: gb(6.3),
			Curve: curveMBps(195.7, 77.6, 150.0, 280.0, 400.0),
		},
		{
			Label: "BT-D", Name: "NAS BT-IO (Class D)",
			Nodes: 64, Processes: 512,
			WriteBytes: gb(126.5), ReadBytes: gb(126.5),
			Curve: curveMBps(150.0, 597.2, 594.2, 610.0, 615.0),
		},
		{
			Label: "HACC", Name: "HACC-IO",
			Nodes: 8, Processes: 64,
			WriteBytes: gb(1.8), ReadBytes: 0,
			Curve: curveMBps(900.0, 987.3, 1800.0, 2900.0, 3850.7),
		},
		{
			Label: "IOR-MPI", Name: "IOR (MPI-IO)",
			Nodes: 16, Processes: 128,
			WriteBytes: gb(16.0), ReadBytes: gb(16.0),
			Curve: curveMBps(82.4, 268.4, 516.0, 1858.0, 5089.9),
		},
		{
			Label: "POSIX-S", Name: "IOR (POSIX, shared file)",
			Nodes: 16, Processes: 128,
			WriteBytes: gb(16.0), ReadBytes: gb(16.0),
			Curve: curveMBps(250.0, 950.0, 1900.0, 3300.0, 4100.0),
		},
		{
			Label: "POSIX-L", Name: "IOR (POSIX, file-per-process)",
			Nodes: 64, Processes: 512,
			WriteBytes: gb(32.0), ReadBytes: gb(32.0),
			Curve: curveMBps(50.0, 210.0, 411.9, 700.0, 1963.9),
		},
		{
			Label: "MAD", Name: "MADBench2",
			Nodes: 32, Processes: 64,
			WriteBytes: gb(16.2), ReadBytes: gb(16.2),
			Curve: curveMBps(255.9, 77.8, 130.0, 290.0, 240.0),
		},
		{
			Label: "SIM", Name: "S3aSim",
			Nodes: 16, Processes: 16,
			WriteBytes: gb(19.6), ReadBytes: 0,
			Curve: curveMBps(120.0, 180.0, 270.0, 230.0, 160.0),
		},
		{
			Label: "S3D", Name: "S3D-IO",
			Nodes: 64, Processes: 512,
			WriteBytes: gb(33.7), ReadBytes: 0,
			Curve: curveMBps(241.3, 60.0, 48.1, 150.0, 200.0),
		},
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Label < apps[j].Label })
	return apps
}

// AppByLabel returns the evaluation application with the given Table 3
// label, or an error naming the unknown label.
func AppByLabel(label string) (AppSpec, error) {
	for _, a := range EvaluationApps() {
		if a.Label == label {
			return a, nil
		}
	}
	return AppSpec{}, fmt.Errorf("perfmodel: unknown application label %q", label)
}

// SectionFiveTwoApps returns the six-application subset used by the paper's
// §5.2 allocation-decision experiment (Figures 6–8 and Table 4).
func SectionFiveTwoApps() []AppSpec {
	labels := []string{"BT-C", "BT-D", "IOR-MPI", "POSIX-L", "MAD", "S3D"}
	out := make([]AppSpec, 0, len(labels))
	for _, l := range labels {
		a, err := AppByLabel(l)
		if err != nil {
			panic(err) // unreachable: labels are the package's own
		}
		out = append(out, a)
	}
	return out
}
