package perfmodel

import (
	"math"
	"testing"

	"repro/internal/units"
)

func mbps(b units.Bandwidth) float64 { return b.MBps() }

func appAt(t *testing.T, label string, k int) float64 {
	t.Helper()
	a, err := AppByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	bw, ok := a.Curve.At(k)
	if !ok {
		t.Fatalf("%s has no point at %d IONs", label, k)
	}
	return mbps(bw)
}

func TestEvaluationAppsComplete(t *testing.T) {
	apps := EvaluationApps()
	if len(apps) != 9 {
		t.Fatalf("Table 3 lists 9 applications, got %d", len(apps))
	}
	for _, a := range apps {
		if a.Curve.Len() != 5 {
			t.Errorf("%s: want 5 curve points (0,1,2,4,8), got %d", a.Label, a.Curve.Len())
		}
		if a.Nodes <= 0 || a.Processes <= 0 || a.WriteBytes <= 0 {
			t.Errorf("%s: incomplete spec %+v", a.Label, a)
		}
		if a.Processes%a.Nodes != 0 {
			t.Errorf("%s: processes %d not divisible by nodes %d", a.Label, a.Processes, a.Nodes)
		}
	}
}

// TestPaperAnchors verifies every bandwidth number the paper states
// explicitly (Table 4 and the §5.3 text).
func TestPaperAnchors(t *testing.T) {
	anchors := []struct {
		label string
		k     int
		mbps  float64
	}{
		{"BT-C", 0, 195.7}, {"BT-C", 1, 77.6},
		{"BT-D", 1, 597.2}, {"BT-D", 2, 594.2},
		{"IOR-MPI", 1, 268.4}, {"IOR-MPI", 8, 5089.9},
		{"POSIX-L", 2, 411.9}, {"POSIX-L", 8, 1963.9},
		{"MAD", 0, 255.9}, {"MAD", 1, 77.8},
		{"S3D", 0, 241.3}, {"S3D", 2, 48.1},
		{"HACC", 1, 987.3}, {"HACC", 8, 3850.7},
	}
	for _, a := range anchors {
		if got := appAt(t, a.label, a.k); math.Abs(got-a.mbps) > 0.05 {
			t.Errorf("%s at %d IONs = %.1f MB/s, paper says %.1f", a.label, a.k, got, a.mbps)
		}
	}
}

// TestIORMPIClaim checks the text's claim that IOR-MPI is 18.96× faster
// with eight forwarders than with one.
func TestIORMPIClaim(t *testing.T) {
	ratio := appAt(t, "IOR-MPI", 8) / appAt(t, "IOR-MPI", 1)
	if math.Abs(ratio-18.96) > 0.05 {
		t.Fatalf("IOR-MPI 8-vs-1 ratio = %.2f, paper says 18.96", ratio)
	}
}

// TestHACCClaim checks the §5.3 claim that HACC with 8 I/O nodes is 3.9×
// its 1-I/O-node (STATIC) bandwidth.
func TestHACCClaim(t *testing.T) {
	ratio := appAt(t, "HACC", 8) / appAt(t, "HACC", 1)
	if math.Abs(ratio-3.9) > 0.05 {
		t.Fatalf("HACC 8-vs-1 ratio = %.2f, paper says 3.9", ratio)
	}
}

// TestOracleWeightIs36: the §5.2 six-application set must have a total
// ORACLE weight of exactly 36, the point where the paper reports MCKP
// matching the ORACLE upper bound.
func TestOracleWeightIs36(t *testing.T) {
	total := 0
	for _, a := range SectionFiveTwoApps() {
		total += a.Curve.Best().IONs
	}
	if total != 36 {
		t.Fatalf("ORACLE weight of §5.2 set = %d, want 36", total)
	}
}

// TestS3DPrefersDirect: the paper states MCKP gives S3D no I/O nodes
// because direct PFS access is its best option.
func TestS3DPrefersDirect(t *testing.T) {
	a, err := AppByLabel("S3D")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Curve.Best().IONs; got != 0 {
		t.Fatalf("S3D best = %d IONs, paper says 0", got)
	}
}

func TestAppByLabelUnknown(t *testing.T) {
	if _, err := AppByLabel("NOPE"); err == nil {
		t.Fatal("unknown label must error")
	}
}

func TestSectionFiveTwoApps(t *testing.T) {
	apps := SectionFiveTwoApps()
	if len(apps) != 6 {
		t.Fatalf("want 6 apps, got %d", len(apps))
	}
	want := map[string]bool{"BT-C": true, "BT-D": true, "IOR-MPI": true, "POSIX-L": true, "MAD": true, "S3D": true}
	for _, a := range apps {
		if !want[a.Label] {
			t.Errorf("unexpected app %s", a.Label)
		}
	}
}

func TestRuntime(t *testing.T) {
	a, err := AppByLabel("IOR-MPI")
	if err != nil {
		t.Fatal(err)
	}
	secs, ok := a.Runtime(8)
	if !ok {
		t.Fatal("runtime at 8 IONs should exist")
	}
	// 32 GB at 5089.9 MB/s ≈ 6.29 s.
	want := 32.0e9 / 5089.9e6
	if math.Abs(secs-want) > 0.01 {
		t.Fatalf("runtime = %v, want %v", secs, want)
	}
	if _, ok := a.Runtime(3); ok {
		t.Fatal("runtime at non-option ION count should be !ok")
	}
}

func TestTotalBytes(t *testing.T) {
	a, _ := AppByLabel("BT-D")
	if got := a.TotalBytes(); got != gb(253.0) {
		t.Fatalf("BT-D total = %d, want %d (253 GB)", got, gb(253.0))
	}
}
