package perfmodel

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/pattern"
)

// TestCurveForMemoized: cached and fresh evaluations agree, including under
// concurrent access from many goroutines (run with -race).
func TestCurveForMemoized(t *testing.T) {
	m := New(DefaultParams())
	pats := pattern.MN4Survey()

	// Fresh model computes, warm model loads from cache; both must agree
	// point for point with an independently constructed model.
	ref := New(DefaultParams())
	for _, p := range pats[:20] {
		first := m.CurveFor(p, 8, true)
		second := m.CurveFor(p, 8, true)
		if !reflect.DeepEqual(first.Points(), second.Points()) {
			t.Fatalf("cached curve differs for %v", p)
		}
		if !reflect.DeepEqual(first.Points(), ref.CurveFor(p, 8, true).Points()) {
			t.Fatalf("cached curve differs from fresh model for %v", p)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range pats {
				c := m.CurveFor(p, 8, true)
				if c.Len() == 0 {
					t.Error("empty curve from concurrent CurveFor")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCurveForCacheKeyed: different (maxIONs, allowZero) arguments must not
// collide in the cache.
func TestCurveForCacheKeyed(t *testing.T) {
	m := New(DefaultParams())
	p := pattern.MN4Survey()[0]
	full := m.CurveFor(p, 8, true)
	noZero := m.CurveFor(p, 8, false)
	if _, ok := full.At(0); !ok {
		t.Fatal("allowZero curve lost its 0 point")
	}
	if _, ok := noZero.At(0); ok {
		t.Fatal("no-zero curve has a 0 point: cache key collision")
	}
	small := m.CurveFor(p, 2, true)
	if _, ok := small.At(8); ok {
		t.Fatal("maxIONs=2 curve has an 8 point: cache key collision")
	}
}

// TestSurveyCurvesMemoizedCopy: callers get a private slice over the shared
// immutable curves, so mutating it cannot poison later callers.
func TestSurveyCurvesMemoizedCopy(t *testing.T) {
	m := New(DefaultParams())
	a := m.SurveyCurves()
	if len(a) != 189 {
		t.Fatalf("survey size: %d", len(a))
	}
	a[0] = Curve{}
	b := m.SurveyCurves()
	if b[0].Len() == 0 {
		t.Fatal("mutating a returned survey slice leaked into the cache")
	}
}

// TestDefaultShared: Default returns one shared model so its curve cache is
// warm across experiments.
func TestDefaultShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() should return the shared model")
	}
}
