package perfmodel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pattern"
	"repro/internal/units"
)

// Point is one measurement of a bandwidth curve: the bandwidth achieved
// with a given number of I/O forwarding nodes.
type Point struct {
	IONs      int
	Bandwidth units.Bandwidth
}

// Curve is an application's (or pattern's) bandwidth as a function of the
// number of I/O nodes — the per-class item list fed to the MCKP policy.
// Points are kept sorted by ION count and unique.
type Curve struct {
	points []Point
}

// NewCurve builds a curve from points; duplicates (same ION count) keep the
// last value. The input is not retained.
func NewCurve(points ...Point) Curve {
	byION := make(map[int]units.Bandwidth, len(points))
	for _, pt := range points {
		byION[pt.IONs] = pt.Bandwidth
	}
	out := make([]Point, 0, len(byION))
	for k, bw := range byION {
		out = append(out, Point{IONs: k, Bandwidth: bw})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IONs < out[j].IONs })
	return Curve{points: out}
}

// Points returns a copy of the curve's points, sorted by ION count.
func (c Curve) Points() []Point { return append([]Point(nil), c.points...) }

// Len returns the number of points.
func (c Curve) Len() int { return len(c.points) }

// At returns the bandwidth at exactly k I/O nodes and whether the curve has
// a point there.
func (c Curve) At(k int) (units.Bandwidth, bool) {
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].IONs >= k })
	if i < len(c.points) && c.points[i].IONs == k {
		return c.points[i].Bandwidth, true
	}
	return 0, false
}

// Best returns the point with the highest bandwidth (the ORACLE choice).
// Ties go to the smaller ION count. Zero Point for an empty curve.
func (c Curve) Best() Point {
	var best Point
	for i, pt := range c.points {
		if i == 0 || pt.Bandwidth > best.Bandwidth {
			best = pt
		}
	}
	return best
}

// Restrict returns a copy of the curve keeping only points whose ION count
// is at most maxIONs.
func (c Curve) Restrict(maxIONs int) Curve {
	out := make([]Point, 0, len(c.points))
	for _, pt := range c.points {
		if pt.IONs <= maxIONs {
			out = append(out, pt)
		}
	}
	return Curve{points: out}
}

// String renders the curve as "0:241.3 1:60.0 ..." in MB/s.
func (c Curve) String() string {
	var b strings.Builder
	for i, pt := range c.points {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.1f", pt.IONs, pt.Bandwidth.MBps())
	}
	return b.String()
}

// curveKey identifies one memoized CurveFor evaluation.
type curveKey struct {
	pat       pattern.Pattern
	maxIONs   int
	allowZero bool
}

// CurveFor evaluates the model at each of the standard ION options for the
// pattern (0, and powers of two dividing the node count up to maxIONs) and
// returns the resulting curve. Results are memoized per model: the model is
// deterministic in (pattern, maxIONs, allowZero), and campaign runs
// re-evaluate the same 189 survey scenarios constantly. Safe for concurrent
// use.
func (m *Model) CurveFor(pat pattern.Pattern, maxIONs int, allowZero bool) Curve {
	key := curveKey{pat: pat, maxIONs: maxIONs, allowZero: allowZero}
	if v, ok := m.curves.Load(key); ok {
		return v.(Curve)
	}
	opts := pattern.IONOptions(pat.Nodes, maxIONs, allowZero)
	pts := make([]Point, 0, len(opts))
	for _, k := range opts {
		pts = append(pts, Point{IONs: k, Bandwidth: m.Bandwidth(pat, k)})
	}
	c := NewCurve(pts...)
	m.curves.Store(key, c)
	return c
}

// SurveyCurves evaluates the model over the full 189-scenario MN4 survey
// with the paper's option set {0,1,2,4,8}. The sweep is computed once per
// model and memoized; callers receive a fresh slice over the shared
// immutable curves. Safe for concurrent use.
func (m *Model) SurveyCurves() []Curve {
	m.surveyOnce.Do(func() {
		pats := pattern.MN4Survey()
		m.survey = make([]Curve, len(pats))
		for i, p := range pats {
			m.survey[i] = m.CurveFor(p, 8, true)
		}
	})
	return append([]Curve(nil), m.survey...)
}

// OptimumDistribution returns, for each ION option, the fraction of curves
// whose best bandwidth is achieved at that option.
func OptimumDistribution(curves []Curve) map[int]float64 {
	counts := make(map[int]int)
	for _, c := range curves {
		counts[c.Best().IONs]++
	}
	out := make(map[int]float64, len(counts))
	for k, n := range counts {
		out[k] = float64(n) / float64(len(curves))
	}
	return out
}
