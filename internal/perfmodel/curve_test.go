package perfmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/units"
)

func TestNewCurveSortsAndDedups(t *testing.T) {
	c := NewCurve(
		Point{IONs: 4, Bandwidth: 40},
		Point{IONs: 0, Bandwidth: 10},
		Point{IONs: 4, Bandwidth: 44}, // duplicate: keeps last
		Point{IONs: 2, Bandwidth: 20},
	)
	if c.Len() != 3 {
		t.Fatalf("want 3 points, got %d (%v)", c.Len(), c)
	}
	pts := c.Points()
	if pts[0].IONs != 0 || pts[1].IONs != 2 || pts[2].IONs != 4 {
		t.Fatalf("points not sorted: %v", pts)
	}
	if bw, ok := c.At(4); !ok || bw != 44 {
		t.Fatalf("duplicate should keep last value, got %v %v", bw, ok)
	}
}

func TestCurveAt(t *testing.T) {
	c := NewCurve(Point{IONs: 0, Bandwidth: 5}, Point{IONs: 8, Bandwidth: 80})
	if bw, ok := c.At(0); !ok || bw != 5 {
		t.Fatalf("At(0): %v %v", bw, ok)
	}
	if _, ok := c.At(3); ok {
		t.Fatal("At(3) should be missing")
	}
	if bw, ok := c.At(8); !ok || bw != 80 {
		t.Fatalf("At(8): %v %v", bw, ok)
	}
}

func TestCurveBestTieBreaksLow(t *testing.T) {
	c := NewCurve(
		Point{IONs: 1, Bandwidth: 100},
		Point{IONs: 2, Bandwidth: 100},
		Point{IONs: 4, Bandwidth: 99},
	)
	if got := c.Best(); got.IONs != 1 {
		t.Fatalf("tie should go to smaller ION count, got %+v", got)
	}
	var empty Curve
	if got := empty.Best(); got.IONs != 0 || got.Bandwidth != 0 {
		t.Fatalf("empty curve Best should be zero, got %+v", got)
	}
}

func TestCurveRestrict(t *testing.T) {
	c := NewCurve(
		Point{IONs: 0, Bandwidth: 1},
		Point{IONs: 2, Bandwidth: 2},
		Point{IONs: 8, Bandwidth: 8},
	)
	r := c.Restrict(4)
	if r.Len() != 2 {
		t.Fatalf("restrict: %v", r)
	}
	if _, ok := r.At(8); ok {
		t.Fatal("restricted curve still has 8-ION point")
	}
	// Original unchanged.
	if c.Len() != 3 {
		t.Fatal("Restrict mutated the receiver")
	}
}

func TestCurveForUsesPatternOptions(t *testing.T) {
	m := Default()
	p := pattern.Pattern{Nodes: 12, ProcsPerNod: 12, Layout: pattern.SharedFile,
		Spatiality: pattern.Contiguous, RequestSize: units.MiB, Operation: pattern.Write}
	c := m.CurveFor(p, 8, true)
	// 12 nodes: options are 0,1,2,4 (8 does not divide 12).
	if c.Len() != 4 {
		t.Fatalf("want 4 options for 12 nodes, got %v", c)
	}
	if _, ok := c.At(8); ok {
		t.Fatal("8 IONs must not be an option for a 12-node job")
	}
}

func TestCurveBestIsMaxProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, 0, len(raw))
		for i, v := range raw {
			pts = append(pts, Point{IONs: i, Bandwidth: units.Bandwidth(v)})
		}
		c := NewCurve(pts...)
		best := c.Best()
		for _, pt := range c.Points() {
			if pt.Bandwidth > best.Bandwidth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptimumDistributionSums(t *testing.T) {
	curves := []Curve{
		NewCurve(Point{0, 10}, Point{2, 5}),
		NewCurve(Point{0, 1}, Point{2, 5}),
		NewCurve(Point{0, 1}, Point{2, 5}),
		NewCurve(Point{0, 1}, Point{8, 5}),
	}
	dist := OptimumDistribution(curves)
	if dist[0] != 0.25 || dist[2] != 0.5 || dist[8] != 0.25 {
		t.Fatalf("distribution wrong: %v", dist)
	}
}

func TestCurveString(t *testing.T) {
	c := NewCurve(Point{IONs: 0, Bandwidth: units.BandwidthFromMBps(241.3)})
	if got := c.String(); got != "0:241.3" {
		t.Fatalf("String: %q", got)
	}
}
