// Package perfmodel provides the analytic I/O performance model that stands
// in for the MareNostrum 4 measurements of the paper's §2 survey. Given an
// access pattern and a number of I/O forwarding nodes it predicts the
// client-side bandwidth, reproducing the qualitative behaviour the paper
// measured with FORGE:
//
//   - file-per-process workloads with large requests scale with I/O nodes;
//   - shared-file workloads are dominated by file-level contention that
//     grows with the number of client processes and is only partially
//     relieved by forwarding (aggregation + fewer PFS writers), so they
//     peak at a small number of I/O nodes;
//   - 1D-strided workloads suffer an additional fragmentation penalty that
//     request reordering at the I/O nodes only partly recovers;
//   - small jobs with large contiguous requests are better off talking to
//     the PFS directly (zero I/O nodes).
//
// The default parameters are calibrated (see calibrate_test.go) so that the
// distribution of the optimal I/O-node count over the 189-scenario survey
// matches the paper's §2 finding: best at 0 IONs for 33% of scenarios, 1 for
// 6%, 2 for 44%, 4 for 8%, and 8 for 9%.
package perfmodel

import (
	"math"
	"sync"

	"repro/internal/pattern"
	"repro/internal/units"
)

// Params holds every tunable constant of the analytic model. The zero value
// is not useful; start from DefaultParams.
type Params struct {
	// PFSAggregate is the peak aggregate backend bandwidth (all data
	// servers together) for perfectly formed traffic.
	PFSAggregate units.Bandwidth
	// IONLink is the ingress bandwidth of one I/O node (network in +
	// staging out overlap, hence a single figure).
	IONLink units.Bandwidth
	// ClientLink is the network bandwidth of one compute node.
	ClientLink units.Bandwidth
	// DispatchWidth is the number of parallel streams each I/O node keeps
	// toward the PFS.
	DispatchWidth int

	// DirectStreams0 and DirectStreamExp control how quickly many
	// concurrent client streams erode PFS efficiency on the direct path:
	// eff = 1/(1+(streams/DirectStreams0)^DirectStreamExp). The sharp
	// exponent reflects the MN4 observation that direct access holds up
	// well until the client count approaches the servers' limit, then
	// collapses — which is what makes forwarding a large win for the
	// very largest jobs (Figure 1's pattern A) while small jobs prefer
	// direct access.
	DirectStreams0  float64
	DirectStreamExp float64
	// FwdStreams0 is the same constant for the forwarded path (I/O node
	// dispatch streams are well formed, so this is much larger).
	FwdStreams0 float64

	// ReqOverheadDirect is the per-request positioning overhead on the
	// direct path expressed as an equivalent byte count: the size
	// efficiency is s/(s+ReqOverheadDirect).
	ReqOverheadDirect float64
	// ReqOverheadION is the per-request handling overhead at an I/O node.
	ReqOverheadION float64

	// AggFactorFPP, AggFactorShared, AggFactorStrided are the request
	// aggregation factors the forwarding layer achieves for each shape
	// (contiguous requests from many clients coalesce at the I/O node).
	AggFactorFPP     float64
	AggFactorShared  float64
	AggFactorStrided float64
	// AggCap bounds the effective aggregated request size in bytes.
	AggCap float64

	// SharedProcs0 scales the shared-file contention penalty with the
	// number of client processes: P = 1/(1+procs/SharedProcs0).
	SharedProcs0 float64
	// StridedProcs0 is the equivalent for 1D-strided access.
	StridedProcs0 float64
	// SharedLargeReq0 penalizes large requests on shared files (stripe
	// and lock-boundary conflicts): 1/(1+s/SharedLargeReq0).
	SharedLargeReq0 float64
	// StridedReqKnee is the knee of the strided size efficiency
	// s/(s+StridedReqKnee).
	StridedReqKnee float64
	// StridedFwdFactor and StridedDirectFactor scale strided bandwidth on
	// the forwarded and direct paths (reordering at the I/O node recovers
	// part of the fragmentation penalty, the direct path none of it).
	StridedFwdFactor    float64
	StridedDirectFactor float64

	// IONLockBeta scales the residual inter-I/O-node lock contention on
	// shared files: L(k) = sqrt(k)/(1+β(k-1)²) with
	// β = IONLockBeta·IONLockSmallJob/procs, a unimodal curve whose peak
	// moves right as jobs get larger (small jobs have little to gain from
	// extra forwarders, so their β is large).
	IONLockBeta float64
	// IONLockSmallJob is the client-process count at which β equals
	// IONLockBeta.
	IONLockSmallJob float64
	// IONLockExp is the base exponent of the β power law and
	// IONLockExpScale its growth with job size:
	// β = IONLockBeta·(IONLockSmallJob/procs)^(IONLockExp+procs/IONLockExpScale).
	// The super-exponential tail mirrors the MN4 observation that only
	// the very largest shared-file jobs keep benefiting from extra
	// forwarders.
	IONLockExp      float64
	IONLockExpScale float64
	// PerStreamRate caps the PFS-side throughput of one I/O-node dispatch
	// stream; with few I/O nodes the backend cannot be saturated.
	PerStreamRate units.Bandwidth
	// Jitter is the relative amplitude of the deterministic pseudo-noise
	// applied to every prediction, emulating the run-to-run variance of
	// the paper's measurements (each MN4 scenario was run at least five
	// times across different days). A fixed hash of (pattern, k) keeps
	// the model reproducible.
	Jitter float64
	// FwdOverhead is the store-and-forward multiplicative efficiency.
	FwdOverhead float64
	// FPPMetaPenalty models metadata pressure of file-per-process
	// workloads: M = 1/(1+files/FPPMetaPenalty).
	FPPMetaPenalty float64
	// ReadPenaltyExp softens the shared-file contention penalty for read
	// workloads (reads take no write locks): the penalty factor is raised
	// to this exponent, so 1 means reads behave like writes and 0.5 means
	// the penalty is square-rooted. Applies to both paths.
	ReadPenaltyExp float64
}

// DefaultParams returns the calibrated MareNostrum-4-like parameter set.
func DefaultParams() Params {
	return Params{
		PFSAggregate: units.BandwidthFromMBps(6000),
		IONLink:      units.BandwidthFromMBps(1100),
		ClientLink:   units.BandwidthFromMBps(1200),

		DispatchWidth:   2,
		DirectStreams0:  1400,
		DirectStreamExp: 4,
		FwdStreams0:     1e9, // effectively no decay; PerStreamRate models ramp-up

		ReqOverheadDirect: 256 * 1024,
		ReqOverheadION:    32 * 1024,

		AggFactorFPP:     1, // forwarding cannot coalesce across files
		AggFactorShared:  8,
		AggFactorStrided: 2,
		AggCap:           6 * 1024 * 1024, // chunking splits requests at I/O nodes

		SharedProcs0:    30,
		StridedProcs0:   50,
		SharedLargeReq0: 4 * 1024 * 1024,
		StridedReqKnee:  1024 * 1024,

		StridedFwdFactor:    0.40,
		StridedDirectFactor: 0.12,

		IONLockBeta:     1.0,
		IONLockSmallJob: 82,
		IONLockExp:      1.0,
		IONLockExpScale: 2695,
		Jitter:          0.02,
		PerStreamRate:   units.BandwidthFromMBps(450),
		FwdOverhead:     0.87,
		FPPMetaPenalty:  6000,
		ReadPenaltyExp:  0.5,
	}
}

// Model predicts bandwidth for access patterns under forwarding
// configurations. The zero value is unusable; construct with New. A Model
// is safe for concurrent use: its parameters are immutable after New and
// the memoized curve cache is concurrency-safe.
type Model struct {
	p Params

	// curves memoizes CurveFor results (curveKey → Curve). The survey and
	// the campaign engine evaluate the same 189 scenarios over and over,
	// so most CurveFor calls repeat; curves are immutable values, so
	// cached entries can be shared freely across goroutines.
	curves sync.Map

	// surveyOnce/survey memoize the full 189-scenario sweep.
	surveyOnce sync.Once
	survey     []Curve
}

// New returns a model with the given parameters.
func New(p Params) *Model { return &Model{p: p} }

// defaultModel is shared by every Default() caller so the curve cache is
// warm across experiments (the parameter set is immutable).
var defaultModel = New(DefaultParams())

// Default returns the shared model with the calibrated default parameters.
func Default() *Model { return defaultModel }

// Params returns the model's parameter set.
func (m *Model) Params() Params { return m.p }

// Bandwidth predicts the client-side bandwidth of pattern pat when the job
// forwards through k I/O nodes (k == 0 means direct PFS access). Invalid
// patterns and negative k yield zero.
func (m *Model) Bandwidth(pat pattern.Pattern, k int) units.Bandwidth {
	if pat.Validate() != nil || k < 0 {
		return 0
	}
	j := m.jitterFactor(pat, k)
	if k == 0 {
		return units.Bandwidth(float64(m.direct(pat)) * j)
	}
	return units.Bandwidth(float64(m.forwarded(pat, k)) * j)
}

// direct models all client processes hitting the PFS servers concurrently.
func (m *Model) direct(pat pattern.Pattern) units.Bandwidth {
	p := &m.p
	procs := float64(pat.Processes())
	s := float64(pat.RequestSize)

	sizeEff := s / (s + p.ReqOverheadDirect)
	streamEff := 1 / (1 + math.Pow(procs/p.DirectStreams0, p.DirectStreamExp))

	pfs := float64(p.PFSAggregate) * sizeEff * streamEff
	switch {
	case pat.Layout == pattern.FilePerProcess:
		pfs *= 1 / (1 + procs/p.FPPMetaPenalty)
	case pat.Spatiality == pattern.Strided1D:
		pfs *= m.sharedPenalty(pat.Operation, procs, s, p.StridedProcs0) * p.StridedDirectFactor *
			s / (s + p.StridedReqKnee) / sizeEff
	default: // shared contiguous
		pfs *= m.sharedPenalty(pat.Operation, procs, s, p.SharedProcs0)
	}

	clientNet := float64(pat.Nodes) * float64(p.ClientLink)
	return units.Bandwidth(math.Min(pfs, clientNet))
}

// forwarded models the two-stage path: clients → k I/O nodes → PFS.
func (m *Model) forwarded(pat pattern.Pattern, k int) units.Bandwidth {
	p := &m.p
	procs := float64(pat.Processes())
	s := float64(pat.RequestSize)
	kf := float64(k)

	// Stage 1: ingress into the I/O nodes.
	reqEff := s / (s + p.ReqOverheadION)
	ingress := kf * float64(p.IONLink) * reqEff
	clientNet := float64(pat.Nodes) * float64(p.ClientLink)
	ingress = math.Min(ingress, clientNet)

	// Stage 2: I/O nodes dispatch aggregated, well-formed requests.
	agg := p.AggFactorShared
	switch {
	case pat.Layout == pattern.FilePerProcess:
		agg = p.AggFactorFPP
	case pat.Spatiality == pattern.Strided1D:
		agg = p.AggFactorStrided
	}
	sAgg := math.Min(s*agg, p.AggCap)
	sizeEff := sAgg / (sAgg + p.ReqOverheadDirect)

	streams := kf * float64(p.DispatchWidth)
	streamEff := 1 / (1 + streams/p.FwdStreams0)

	pfs := float64(p.PFSAggregate) * sizeEff * streamEff
	switch {
	case pat.Layout == pattern.FilePerProcess:
		pfs *= 1 / (1 + procs/p.FPPMetaPenalty)
	case pat.Spatiality == pattern.Strided1D:
		pfs *= m.sharedPenalty(pat.Operation, procs, s, p.StridedProcs0) *
			m.ionLock(kf, procs) * p.StridedFwdFactor *
			(s / (s + p.StridedReqKnee)) / sizeEff
	default: // shared contiguous
		pfs *= m.sharedPenalty(pat.Operation, procs, s, p.SharedProcs0) * m.ionLock(kf, procs)
	}

	// Few I/O nodes cannot saturate the backend: each dispatch stream has
	// a finite rate, so the PFS-side value ramps with k until other
	// limits take over.
	pfs = math.Min(pfs, streams*float64(p.PerStreamRate))

	return units.Bandwidth(math.Min(ingress, pfs) * p.FwdOverhead)
}

// sharedPenalty is the file-level contention factor for shared files: it
// shrinks with the number of interleaved writers and with oversized
// requests that span lock boundaries. Read workloads take no write locks,
// so their penalty is softened by ReadPenaltyExp.
func (m *Model) sharedPenalty(op pattern.Operation, procs, reqSize, procs0 float64) float64 {
	pen := 1 / (1 + procs/procs0) / (1 + reqSize/m.p.SharedLargeReq0)
	if op == pattern.Read && m.p.ReadPenaltyExp > 0 && m.p.ReadPenaltyExp != 1 {
		pen = math.Pow(pen, m.p.ReadPenaltyExp)
	}
	return pen
}

// ionLock captures the interplay between dispatch parallelism (more I/O
// nodes push more streams) and residual lock contention between I/O nodes
// writing the same shared file. It is unimodal in k; its peak moves toward
// larger k as the job's client count grows.
func (m *Model) ionLock(k, procs float64) float64 {
	exp := m.p.IONLockExp + procs/m.p.IONLockExpScale
	beta := m.p.IONLockBeta * math.Pow(m.p.IONLockSmallJob/procs, exp)
	return math.Sqrt(k) / (1 + beta*(k-1)*(k-1))
}

// jitterFactor derives a deterministic pseudo-noise multiplier in
// [1-Jitter, 1+Jitter] from the pattern and ION count, using an FNV-1a
// style mix. It stands in for the measurement dispersion of the paper's
// repeated runs while keeping every prediction reproducible.
func (m *Model) jitterFactor(pat pattern.Pattern, k int) float64 {
	if m.p.Jitter == 0 {
		return 1
	}
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(pat.Nodes))
	mix(uint64(pat.ProcsPerNod))
	mix(uint64(pat.Layout) + 17)
	mix(uint64(pat.Spatiality) + 31)
	mix(uint64(pat.RequestSize))
	mix(uint64(pat.Operation) + 7)
	mix(uint64(k) + 101)
	// splitmix64-style finalizer: FNV alone diffuses low-bit input
	// differences (e.g. k=2 vs k=4) too weakly into the high bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	// Map the top 53 bits to [0,1), then to [-1,1].
	u := float64(h>>11) / float64(1<<53)
	return 1 + m.p.Jitter*(2*u-1)
}
