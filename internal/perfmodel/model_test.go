package perfmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/units"
)

func pat(nodes, ppn int, layout pattern.Layout, spat pattern.Spatiality, req int64) pattern.Pattern {
	return pattern.Pattern{
		Nodes: nodes, ProcsPerNod: ppn, Layout: layout,
		Spatiality: spat, RequestSize: req, Operation: pattern.Write,
	}
}

func TestBandwidthPositiveOverSurvey(t *testing.T) {
	m := Default()
	for _, p := range pattern.MN4Survey() {
		for _, k := range []int{0, 1, 2, 4, 8} {
			if bw := m.Bandwidth(p, k); bw <= 0 {
				t.Fatalf("non-positive bandwidth for %v at %d IONs: %v", p, k, bw)
			}
		}
	}
}

func TestBandwidthInvalidInputs(t *testing.T) {
	m := Default()
	if bw := m.Bandwidth(pattern.Pattern{}, 1); bw != 0 {
		t.Fatalf("invalid pattern must yield 0, got %v", bw)
	}
	p := pat(8, 12, pattern.SharedFile, pattern.Contiguous, units.MiB)
	if bw := m.Bandwidth(p, -1); bw != 0 {
		t.Fatalf("negative ION count must yield 0, got %v", bw)
	}
}

func TestBandwidthDeterministic(t *testing.T) {
	m := Default()
	p := pat(32, 48, pattern.SharedFile, pattern.Strided1D, 512*units.KiB)
	first := m.Bandwidth(p, 2)
	for i := 0; i < 10; i++ {
		if got := m.Bandwidth(p, 2); got != first {
			t.Fatalf("prediction not deterministic: %v then %v", first, got)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	params := DefaultParams()
	noJitter := New(func() Params { q := params; q.Jitter = 0; return q }())
	withJitter := New(params)
	for _, p := range pattern.MN4Survey() {
		for _, k := range []int{0, 1, 2, 4, 8} {
			base := float64(noJitter.Bandwidth(p, k))
			got := float64(withJitter.Bandwidth(p, k))
			lo, hi := base*(1-params.Jitter)-1e-9, base*(1+params.Jitter)+1e-9
			if got < lo || got > hi {
				t.Fatalf("jittered value %v outside [%v,%v] for %v k=%d", got, lo, hi, p, k)
			}
		}
	}
}

func TestJitterVariesWithK(t *testing.T) {
	m := Default()
	p := pat(16, 48, pattern.SharedFile, pattern.Contiguous, units.MiB)
	// The k=2 and k=4 points of a 768-process shared job are an
	// engineered near-tie; the jitter hash must separate them by more
	// than the underlying 0.1% model difference.
	a, _ := m.CurveFor(p, 8, true).At(2)
	b, _ := m.CurveFor(p, 8, true).At(4)
	rel := float64(a-b) / float64(a)
	if rel < 0 {
		rel = -rel
	}
	if rel < 0.002 {
		t.Fatalf("jitter fails to separate adjacent ION counts: rel diff %v", rel)
	}
}

// TestFilePerProcessShapes checks the qualitative Figure 1 behaviour of
// file-per-process patterns: large jobs gain from forwarding, small jobs
// prefer direct access.
func TestFilePerProcessShapes(t *testing.T) {
	m := Default()
	big := pat(32, 48, pattern.FilePerProcess, pattern.Contiguous, units.MiB) // pattern A
	c := m.CurveFor(big, 8, true)
	if c.Best().IONs < 4 {
		t.Fatalf("large fpp job should peak at >=4 IONs, curve %v", c)
	}
	small := pat(8, 12, pattern.FilePerProcess, pattern.Contiguous, 4*units.MiB)
	if got := m.CurveFor(small, 8, true).Best().IONs; got != 0 {
		t.Fatalf("small fpp job should prefer direct access, got %d IONs (%v)", got, m.CurveFor(small, 8, true))
	}
}

// TestSharedFileShapes checks that shared-file patterns peak at a small
// number of I/O nodes and that forwarding beats direct access for
// medium/large shared jobs (the paper's central observation).
func TestSharedFileShapes(t *testing.T) {
	m := Default()
	p := pat(16, 24, pattern.SharedFile, pattern.Contiguous, 128*units.KiB) // pattern F
	c := m.CurveFor(p, 8, true)
	best := c.Best()
	if best.IONs == 0 || best.IONs > 4 {
		t.Fatalf("medium shared job should peak at 1..4 IONs, curve %v", c)
	}
	direct, _ := c.At(0)
	if best.Bandwidth < direct {
		t.Fatalf("forwarding should beat direct access for %v: %v", p, c)
	}
}

// TestStridedWorseThanContiguous: 1D-strided access never outperforms the
// equivalent contiguous pattern (fragmentation only hurts).
func TestStridedWorseThanContiguous(t *testing.T) {
	m := Default()
	for _, nodes := range []int{8, 16, 32} {
		for _, ppn := range []int{12, 24, 48} {
			for _, req := range []int64{32 * units.KiB, units.MiB, 8 * units.MiB} {
				for _, k := range []int{0, 1, 2, 4, 8} {
					contig := m.Bandwidth(pat(nodes, ppn, pattern.SharedFile, pattern.Contiguous, req), k)
					strided := m.Bandwidth(pat(nodes, ppn, pattern.SharedFile, pattern.Strided1D, req), k)
					// Allow the jitter amplitude as slack.
					if float64(strided) > float64(contig)*(1+2*m.Params().Jitter) {
						t.Fatalf("strided beats contiguous: %dn×%dp req=%d k=%d (%v > %v)",
							nodes, ppn, req, k, strided, contig)
					}
				}
			}
		}
	}
}

// TestCalibratedOptimumDistribution is the calibration contract: the share
// of survey scenarios whose optimum is k I/O nodes must be within 6
// percentage points of the paper's §2 distribution.
func TestCalibratedOptimumDistribution(t *testing.T) {
	dist := OptimumDistribution(Default().SurveyCurves())
	want := map[int]float64{0: 0.33, 1: 0.06, 2: 0.44, 4: 0.08, 8: 0.09}
	const tol = 0.06
	for k, w := range want {
		if got := dist[k]; got < w-tol || got > w+tol {
			t.Errorf("optimum share at %d IONs = %.3f, want %.2f±%.2f (full: %v)", k, got, w, tol, dist)
		}
	}
	var sum float64
	for _, v := range dist {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("distribution does not sum to 1: %v", sum)
	}
}

func TestClientLinkCap(t *testing.T) {
	params := DefaultParams()
	m := New(params)
	// A 1-node job cannot exceed its NIC no matter the configuration.
	p := pat(1, 48, pattern.FilePerProcess, pattern.Contiguous, 8*units.MiB)
	for _, k := range []int{0, 1} {
		if bw := m.Bandwidth(p, k); float64(bw) > float64(params.ClientLink)*(1+params.Jitter) {
			t.Fatalf("1-node job exceeds client NIC at k=%d: %v", k, bw)
		}
	}
}

func TestBandwidthScalesWithReasonableBounds(t *testing.T) {
	params := DefaultParams()
	m := New(params)
	f := func(nodesRaw, ppnRaw uint8, sizeRaw uint16, kRaw uint8) bool {
		nodes := int(nodesRaw)%64 + 1
		ppn := int(ppnRaw)%48 + 1
		size := int64(sizeRaw)*units.KiB + 4*units.KiB
		k := []int{0, 1, 2, 4, 8}[int(kRaw)%5]
		p := pat(nodes, ppn, pattern.FilePerProcess, pattern.Contiguous, size)
		bw := float64(m.Bandwidth(p, k))
		if bw <= 0 {
			return false
		}
		// Never above the PFS aggregate or the client network (plus jitter).
		capVal := float64(params.PFSAggregate)
		if c := float64(nodes) * float64(params.ClientLink); c < capVal {
			capVal = c
		}
		return bw <= capVal*(1+params.Jitter)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReadsSufferLessSharedContention: read workloads take no write locks,
// so a shared-file read pattern achieves at least the bandwidth of the
// equivalent write pattern, strictly more where contention dominates.
func TestReadsSufferLessSharedContention(t *testing.T) {
	m := Default()
	for _, spat := range []pattern.Spatiality{pattern.Contiguous, pattern.Strided1D} {
		for _, k := range []int{0, 1, 2, 4, 8} {
			w := pat(32, 48, pattern.SharedFile, spat, 512*units.KiB)
			r := w
			r.Operation = pattern.Read
			bwW := float64(m.Bandwidth(w, k))
			bwR := float64(m.Bandwidth(r, k))
			// Jitter differs per operation; allow its amplitude.
			if bwR < bwW*(1-2*m.Params().Jitter) {
				t.Fatalf("%v k=%d: read %v below write %v", spat, k, bwR, bwW)
			}
		}
	}
	// Strictly better for a heavily contended case (beyond jitter).
	w := pat(32, 48, pattern.SharedFile, pattern.Contiguous, 128*units.KiB)
	r := w
	r.Operation = pattern.Read
	if float64(m.Bandwidth(r, 2)) < float64(m.Bandwidth(w, 2))*1.5 {
		t.Fatalf("contended shared read should be much faster than write: %v vs %v",
			m.Bandwidth(r, 2), m.Bandwidth(w, 2))
	}
}

// TestReadModelDoesNotChangeWriteSurvey: the §2 calibration is a
// write-only survey; read modeling must not disturb it.
func TestReadModelDoesNotChangeWriteSurvey(t *testing.T) {
	params := DefaultParams()
	params.ReadPenaltyExp = 1 // disable read relief
	plain := New(params)
	def := Default()
	for _, p := range pattern.MN4Survey() {
		for _, k := range []int{0, 2, 8} {
			if plain.Bandwidth(p, k) != def.Bandwidth(p, k) {
				t.Fatalf("write prediction changed for %v at k=%d", p, k)
			}
		}
	}
}

// TestFigure1RelativeMagnitudes pins the cross-pattern ordering visible in
// Figure 1: file-per-process patterns move two orders of magnitude more
// data than shared-file patterns at the same geometry, and the largest
// shared-contiguous pattern (F) outruns every strided pattern.
func TestFigure1RelativeMagnitudes(t *testing.T) {
	m := Default()
	peak := func(label string) float64 {
		c := m.CurveFor(pattern.Figure1Patterns()[label], 8, true)
		return float64(c.Best().Bandwidth)
	}
	if peak("A") < 10*peak("C") {
		t.Fatalf("fpp A (%.0f) should dwarf shared C (%.0f)", peak("A"), peak("C"))
	}
	for _, strided := range []string{"D", "E", "G"} {
		if peak("F") <= peak(strided) {
			t.Fatalf("shared-contiguous F (%.0f) should beat strided %s (%.0f)",
				peak("F"), strided, peak(strided))
		}
	}
	if peak("B") <= peak("F") {
		t.Fatalf("fpp B (%.0f) should beat shared F (%.0f)", peak("B"), peak("F"))
	}
}
