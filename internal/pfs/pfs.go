// Package pfs implements the parallel-file-system substrate the forwarding
// layer dispatches to, standing in for the Lustre deployment of the paper's
// Grid'5000 evaluation (one MGS/MDS and two OSSs with one OST each, 1 MiB
// stripes, striping across all OSTs).
//
// The store keeps file data in memory (or discards payloads in accounting
// mode) and models the performance characteristics that matter to the
// arbitration problem:
//
//   - striping: writes and reads are split at stripe boundaries and each
//     stripe extent is serviced by its OST;
//   - per-OST serial service with a finite streaming rate, so concurrent
//     writers contend for the same disks;
//   - positioning latency for non-sequential extents (small or strided
//     requests pay per-request overhead);
//   - a per-file lock, so interleaved writers to one shared file serialize
//     (the shared-file penalty of the paper's Figure 1).
//
// All latency/rate parameters default to zero, which turns the store into a
// fast functional file system for unit tests; cluster experiments configure
// scaled-down Lustre-like rates.
package pfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// FileSystem is the interface shared by the PFS store, the forwarding
// client, and every application kernel: a minimal POSIX-like contract.
type FileSystem interface {
	// Create makes an empty file, truncating any existing one.
	Create(path string) error
	// Write stores p at offset off, extending the file as needed.
	Write(path string, off int64, p []byte) (int, error)
	// Read fills p from offset off, returning the bytes read. Reads past
	// the end return io.EOF semantics via a short count and error.
	Read(path string, off int64, p []byte) (int, error)
	// Stat reports file metadata.
	Stat(path string) (FileInfo, error)
	// Remove deletes the file.
	Remove(path string) error
	// Fsync flushes the file (a no-op barrier in this model).
	Fsync(path string) error
}

// FileInfo is the metadata returned by Stat.
type FileInfo struct {
	Path string
	Size int64
}

// Errors returned by the store.
var (
	ErrNotExist  = errors.New("pfs: file does not exist")
	ErrShortRead = errors.New("pfs: read past end of file")
)

// Config parameterizes the store.
type Config struct {
	// StripeSize is the striping unit; ≤0 selects 1 MiB (the paper's
	// Lustre configuration).
	StripeSize int64
	// OSTs is the number of object storage targets; ≤0 selects 2 (the
	// paper deploys two OSSs with one OST each).
	OSTs int
	// OSTRate is the per-OST streaming rate; 0 disables throttling.
	OSTRate units.Bandwidth
	// SeekLatency is charged per non-sequential extent on an OST.
	SeekLatency time.Duration
	// LockLatency is charged per write to a file that another writer
	// touched since this writer's last access (shared-file contention).
	LockLatency time.Duration
	// MetaLatency is charged per metadata operation (create/stat/remove).
	MetaLatency time.Duration
	// Discard keeps metadata and accounting but drops payload bytes; use
	// for large-volume benchmarks.
	Discard bool
}

func (c Config) withDefaults() Config {
	if c.StripeSize <= 0 {
		c.StripeSize = units.MiB
	}
	if c.OSTs <= 0 {
		c.OSTs = 2
	}
	return c
}

// Metrics is a snapshot of the store's counters.
type Metrics struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	MetaOps      int64
	// PerOSTBytes is the total volume serviced by each OST.
	PerOSTBytes []int64
	// Seeks counts non-sequential extents serviced.
	Seeks int64
	// LockWaits counts shared-file lock handoffs between writers.
	LockWaits int64
}

type ost struct {
	mu sync.Mutex
	// lastPos tracks the last serviced end offset per file for
	// sequential-access detection.
	lastPos map[string]int64
	bytes   int64
	seeks   int64
}

type file struct {
	mu   sync.Mutex
	data []byte
	size int64
	// lastWriter detects writer interleaving for the lock penalty.
	lastWriter string
	// stripeSize overrides the store default when positive (the Lustre
	// `lfs setstripe` analog); fixed at creation like real layouts.
	stripeSize int64
}

// Store is the in-memory PFS. It is safe for concurrent use.
type Store struct {
	cfg  Config
	osts []*ost

	mu    sync.RWMutex
	files map[string]*file

	statsMu sync.Mutex
	metrics Metrics

	// Registry mirrors of the store counters (nil when uninstrumented;
	// all methods no-op then). These feed the stack-wide /metrics view;
	// Metrics() remains the store's own consistent snapshot.
	tel struct {
		bytesWritten, bytesRead       *telemetry.Counter
		writeOps, readOps, metaOps    *telemetry.Counter
		seeks, lockWaits              *telemetry.Counter
		writeBytesHist, readBytesHist *telemetry.Histogram
	}
}

var _ FileSystem = (*Store)(nil)

// NewStore returns a store with the given configuration.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, files: make(map[string]*file)}
	for i := 0; i < cfg.OSTs; i++ {
		s.osts = append(s.osts, &ost{lastPos: make(map[string]int64)})
	}
	return s
}

// Config returns the store's effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Instrument mirrors the store's counters onto reg (pfs_bytes_written_total,
// pfs_seeks_total, …) so the PFS end of the forwarding path shows up in the
// same exposition as the layers above it. Call before serving traffic; reg
// may be nil (no-op). Returns s for chaining.
func (s *Store) Instrument(reg *telemetry.Registry) *Store {
	s.tel.bytesWritten = reg.Counter("pfs_bytes_written_total")
	s.tel.bytesRead = reg.Counter("pfs_bytes_read_total")
	s.tel.writeOps = reg.Counter("pfs_write_ops_total")
	s.tel.readOps = reg.Counter("pfs_read_ops_total")
	s.tel.metaOps = reg.Counter("pfs_meta_ops_total")
	s.tel.seeks = reg.Counter("pfs_seeks_total")
	s.tel.lockWaits = reg.Counter("pfs_lock_waits_total")
	s.tel.writeBytesHist = reg.Histogram("pfs_write_bytes", telemetry.SizeBuckets())
	s.tel.readBytesHist = reg.Histogram("pfs_read_bytes", telemetry.SizeBuckets())
	return s
}

// Create implements FileSystem.
func (s *Store) Create(path string) error {
	s.meta()
	s.mu.Lock()
	s.files[path] = &file{}
	s.mu.Unlock()
	return nil
}

// SetStripe creates (or truncates) path with a per-file stripe size — the
// `lfs setstripe` analog. Like Lustre, the layout is fixed at creation;
// stripe ≤ 0 selects the store default.
func (s *Store) SetStripe(path string, stripe int64) error {
	s.meta()
	s.mu.Lock()
	s.files[path] = &file{stripeSize: stripe}
	s.mu.Unlock()
	return nil
}

// stripeFor returns the effective stripe size for a file.
func (s *Store) stripeFor(path string) int64 {
	s.mu.RLock()
	f, ok := s.files[path]
	s.mu.RUnlock()
	if ok && f.stripeSize > 0 {
		return f.stripeSize
	}
	return s.cfg.StripeSize
}

func (s *Store) lookup(path string) (*file, error) {
	s.mu.RLock()
	f, ok := s.files[path]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return f, nil
}

// lookupOrCreate returns the file, creating it on first write (the
// forwarding layer's create-on-write semantics keep remote ops minimal).
func (s *Store) lookupOrCreate(path string) *file {
	s.mu.RLock()
	f, ok := s.files[path]
	s.mu.RUnlock()
	if ok {
		return f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok = s.files[path]; ok {
		return f
	}
	f = &file{}
	s.files[path] = f
	return f
}

// Write implements FileSystem. The caller identity for lock accounting is
// anonymous; use WriteAs to attribute writers.
func (s *Store) Write(path string, off int64, p []byte) (int, error) {
	return s.WriteAs("", path, off, p)
}

// WriteAs is Write with an explicit writer identity, used by the I/O-node
// daemons so the shared-file lock model sees which stream a write belongs
// to.
func (s *Store) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f := s.lookupOrCreate(path)

	// File-level lock: serializes interleaved writers and charges the
	// handoff penalty when ownership changes.
	f.mu.Lock()
	if s.cfg.LockLatency > 0 && f.lastWriter != "" && f.lastWriter != writer {
		s.statsMu.Lock()
		s.metrics.LockWaits++
		s.statsMu.Unlock()
		s.tel.lockWaits.Inc()
		time.Sleep(s.cfg.LockLatency)
	}
	f.lastWriter = writer

	end := off + int64(len(p))
	if !s.cfg.Discard {
		if int64(len(f.data)) < end {
			grown := make([]byte, end)
			copy(grown, f.data)
			f.data = grown
		}
		copy(f.data[off:end], p)
	}
	if end > f.size {
		f.size = end
	}
	f.mu.Unlock()

	s.serviceExtents(path, off, int64(len(p)))

	s.statsMu.Lock()
	s.metrics.BytesWritten += int64(len(p))
	s.metrics.WriteOps++
	s.statsMu.Unlock()
	s.tel.writeOps.Inc()
	s.tel.bytesWritten.Add(int64(len(p)))
	s.tel.writeBytesHist.Observe(float64(len(p)))
	return len(p), nil
}

// Read implements FileSystem.
func (s *Store) Read(path string, off int64, p []byte) (int, error) {
	f, err := s.lookup(path)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	f.mu.Lock()
	size := f.size
	n := 0
	if off < size {
		n = int(size - off)
		if n > len(p) {
			n = len(p)
		}
		if !s.cfg.Discard {
			copy(p[:n], f.data[off:off+int64(n)])
		}
	}
	f.mu.Unlock()

	if n > 0 {
		s.serviceExtents(path, off, int64(n))
	}
	s.statsMu.Lock()
	s.metrics.BytesRead += int64(n)
	s.metrics.ReadOps++
	s.statsMu.Unlock()
	s.tel.readOps.Inc()
	s.tel.bytesRead.Add(int64(n))
	s.tel.readBytesHist.Observe(float64(n))
	if n < len(p) {
		return n, ErrShortRead
	}
	return n, nil
}

// Stat implements FileSystem.
func (s *Store) Stat(path string) (FileInfo, error) {
	s.meta()
	f, err := s.lookup(path)
	if err != nil {
		return FileInfo{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FileInfo{Path: path, Size: f.size}, nil
}

// Remove implements FileSystem.
func (s *Store) Remove(path string) error {
	s.meta()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(s.files, path)
	for _, o := range s.osts {
		o.mu.Lock()
		delete(o.lastPos, path)
		o.mu.Unlock()
	}
	return nil
}

// Fsync implements FileSystem. Data is always durable in this model, so it
// only validates existence.
func (s *Store) Fsync(path string) error {
	_, err := s.lookup(path)
	return err
}

// List returns all paths in lexical order (test/diagnostic helper).
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Metrics returns a snapshot of the store counters.
func (s *Store) Metrics() Metrics {
	s.statsMu.Lock()
	m := s.metrics
	s.statsMu.Unlock()
	m.PerOSTBytes = make([]int64, len(s.osts))
	for i, o := range s.osts {
		o.mu.Lock()
		m.PerOSTBytes[i] = o.bytes
		m.Seeks += o.seeks
		o.mu.Unlock()
	}
	return m
}

func (s *Store) meta() {
	if s.cfg.MetaLatency > 0 {
		time.Sleep(s.cfg.MetaLatency)
	}
	s.statsMu.Lock()
	s.metrics.MetaOps++
	s.statsMu.Unlock()
	s.tel.metaOps.Inc()
}

// serviceExtents charges each stripe extent of [off, off+n) to its OST:
// serial per-OST service with optional seek latency and rate limiting.
// Like Lustre, each file's stripes start at a different OST (derived from
// the path) so small files spread across the targets.
func (s *Store) serviceExtents(path string, off, n int64) {
	stripe := s.stripeFor(path)
	base := startOST(path, len(s.osts))
	for n > 0 {
		idx := off / stripe
		extent := stripe - off%stripe
		if extent > n {
			extent = n
		}
		o := s.osts[(base+int(idx%int64(len(s.osts))))%len(s.osts)]
		if !o.service(s.cfg, path, off, extent) {
			s.tel.seeks.Inc()
		}
		off += extent
		n -= extent
	}
}

// startOST picks a file's first OST from its path (FNV-1a).
func startOST(path string, osts int) int {
	h := uint64(1469598103934665603)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return int(h % uint64(osts))
}

// service charges one extent to the OST and reports whether the access
// was sequential (callers count seeks on false).
func (o *ost) service(cfg Config, path string, off, n int64) bool {
	o.mu.Lock()
	sequential := o.lastPos[path] == off
	o.lastPos[path] = off + n
	o.bytes += n
	if !sequential {
		o.seeks++
	}
	var delay time.Duration
	if !sequential && cfg.SeekLatency > 0 {
		delay += cfg.SeekLatency
	}
	if cfg.OSTRate > 0 {
		delay += units.TimeToTransfer(n, cfg.OSTRate)
	}
	if delay > 0 {
		// Sleeping while holding the OST lock is the contention model:
		// an OST services one extent at a time.
		time.Sleep(delay)
	}
	o.mu.Unlock()
	return sequential
}
