package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func newTestStore() *Store { return NewStore(Config{}) }

func TestWriteReadRoundTrip(t *testing.T) {
	s := newTestStore()
	data := []byte("the quick brown fox")
	if _, err := s.Write("/f", 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := s.Read("/f", 0, got)
	if err != nil || n != len(data) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("data mismatch: %q", got)
	}
}

func TestWriteAtOffsetExtends(t *testing.T) {
	s := newTestStore()
	if _, err := s.Write("/f", 100, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	info, err := s.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 103 {
		t.Fatalf("size = %d, want 103", info.Size)
	}
	// The gap reads as zeros.
	buf := make([]byte, 103)
	if _, err := s.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole not zero at %d", i)
		}
	}
	if string(buf[100:]) != "xyz" {
		t.Fatalf("tail = %q", buf[100:])
	}
}

func TestReadPastEnd(t *testing.T) {
	s := newTestStore()
	if _, err := s.Write("/f", 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := s.Read("/f", 0, buf)
	if n != 3 || !errors.Is(err, ErrShortRead) {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	n, err = s.Read("/f", 100, buf)
	if n != 0 || !errors.Is(err, ErrShortRead) {
		t.Fatalf("past-end read: n=%d err=%v", n, err)
	}
}

func TestReadMissingFile(t *testing.T) {
	s := newTestStore()
	if _, err := s.Read("/nope", 0, make([]byte, 1)); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if _, err := s.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat: want ErrNotExist, got %v", err)
	}
	if err := s.Fsync("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("fsync: want ErrNotExist, got %v", err)
	}
}

func TestCreateTruncates(t *testing.T) {
	s := newTestStore()
	if _, err := s.Write("/f", 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	info, _ := s.Stat("/f")
	if info.Size != 0 {
		t.Fatalf("create should truncate, size = %d", info.Size)
	}
}

func TestRemove(t *testing.T) {
	s := newTestStore()
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
	if got := s.List(); len(got) != 0 {
		t.Fatalf("list after remove: %v", got)
	}
}

func TestNegativeOffsets(t *testing.T) {
	s := newTestStore()
	if _, err := s.Write("/f", -1, []byte("x")); err == nil {
		t.Fatal("negative write offset should fail")
	}
	s.Create("/f")
	if _, err := s.Read("/f", -1, make([]byte, 1)); err == nil {
		t.Fatal("negative read offset should fail")
	}
}

func TestStripingAcrossOSTs(t *testing.T) {
	s := NewStore(Config{StripeSize: 4, OSTs: 2})
	// 12 bytes = 3 stripes: the file's first OST gets stripes 0 and 2
	// (8 bytes), the other gets stripe 1 (4 bytes).
	if _, err := s.Write("/f", 0, make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	first := startOST("/f", 2)
	m := s.Metrics()
	if m.PerOSTBytes[first] != 8 || m.PerOSTBytes[1-first] != 4 {
		t.Fatalf("striping wrong: %v (first OST %d)", m.PerOSTBytes, first)
	}
}

func TestStripingUnalignedWrite(t *testing.T) {
	s := NewStore(Config{StripeSize: 4, OSTs: 2})
	// Write [2, 9): extents [2,4)→first, [4,8)→second, [8,9)→first.
	if _, err := s.Write("/f", 2, make([]byte, 7)); err != nil {
		t.Fatal(err)
	}
	first := startOST("/f", 2)
	m := s.Metrics()
	if m.PerOSTBytes[first] != 3 || m.PerOSTBytes[1-first] != 4 {
		t.Fatalf("unaligned striping wrong: %v (first OST %d)", m.PerOSTBytes, first)
	}
}

func TestSmallFilesSpreadAcrossOSTs(t *testing.T) {
	s := NewStore(Config{StripeSize: units.MiB, OSTs: 4})
	for i := 0; i < 64; i++ {
		if _, err := s.Write(fmt.Sprintf("/small%02d", i), 0, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	for i, b := range m.PerOSTBytes {
		if b == 0 {
			t.Fatalf("OST %d idle — sub-stripe files all piled up: %v", i, m.PerOSTBytes)
		}
	}
}

func TestSeekAccounting(t *testing.T) {
	s := NewStore(Config{StripeSize: units.MiB, OSTs: 1})
	// Sequential appends from offset zero never reposition.
	for i := int64(0); i < 4; i++ {
		if _, err := s.Write("/seq", i*1024, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if seqSeeks := s.Metrics().Seeks; seqSeeks != 0 {
		t.Fatalf("sequential writes: %d seeks, want 0", seqSeeks)
	}
	// Strided writes: every one after the first repositions.
	s2 := NewStore(Config{StripeSize: units.MiB, OSTs: 1})
	for i := int64(0); i < 4; i++ {
		if _, err := s2.Write("/str", i*8192, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s2.Metrics().Seeks; got != 3 {
		t.Fatalf("strided writes: %d seeks, want 3", got)
	}
}

func TestDiscardMode(t *testing.T) {
	s := NewStore(Config{Discard: true})
	if _, err := s.Write("/f", 0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	info, err := s.Stat("/f")
	if err != nil || info.Size != 1<<20 {
		t.Fatalf("discard stat: %+v %v", info, err)
	}
	// Reads still report counts, content is zeros.
	buf := make([]byte, 16)
	if n, err := s.Read("/f", 0, buf); n != 16 || err != nil {
		t.Fatalf("discard read: %d %v", n, err)
	}
	m := s.Metrics()
	if m.BytesWritten != 1<<20 || m.BytesRead != 16 {
		t.Fatalf("discard metrics: %+v", m)
	}
}

func TestLockHandoffAccounting(t *testing.T) {
	s := NewStore(Config{LockLatency: time.Microsecond})
	s.WriteAs("w1", "/shared", 0, []byte("a"))
	s.WriteAs("w1", "/shared", 1, []byte("b")) // same writer: no handoff
	s.WriteAs("w2", "/shared", 2, []byte("c")) // handoff
	s.WriteAs("w1", "/shared", 3, []byte("d")) // handoff back
	if got := s.Metrics().LockWaits; got != 2 {
		t.Fatalf("lock handoffs = %d, want 2", got)
	}
}

func TestOSTRateThrottling(t *testing.T) {
	// 1 MiB at 10 MiB/s ≈ 100 ms.
	s := NewStore(Config{OSTs: 1, OSTRate: units.Bandwidth(10 * units.MiB)})
	start := time.Now()
	if _, err := s.Write("/f", 0, make([]byte, units.MiB)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("throttling too weak: %v", elapsed)
	}
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	s := newTestStore()
	const workers = 8
	const writes = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d", w)
			for i := 0; i < writes; i++ {
				if _, err := s.Write(path, int64(i)*8, []byte("12345678")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		info, err := s.Stat(fmt.Sprintf("/w%d", w))
		if err != nil || info.Size != writes*8 {
			t.Fatalf("file w%d: %+v %v", w, info, err)
		}
	}
	if m := s.Metrics(); m.BytesWritten != workers*writes*8 {
		t.Fatalf("bytes written = %d", m.BytesWritten)
	}
}

func TestConcurrentSharedFile(t *testing.T) {
	s := newTestStore()
	const workers = 8
	const region = 1024
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + w)}, region)
			if _, err := s.WriteAs(fmt.Sprintf("w%d", w), "/shared", int64(w)*region, payload); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	buf := make([]byte, workers*region)
	if _, err := s.Read("/shared", 0, buf); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < region; i++ {
			if buf[w*region+i] != byte('a'+w) {
				t.Fatalf("corruption at worker %d offset %d: %q", w, i, buf[w*region+i])
			}
		}
	}
}

// TestConcurrentRemoveVsWriteRead hammers one path with concurrent
// writers, readers and removers. The store must never tear: every Write
// outcome is all-or-nothing (a file recreated by Write after a Remove
// holds exactly one writer's full payload at the written range), every
// Read either fails with ErrNotExist/ErrShortRead or returns bytes some
// writer actually wrote, and nothing panics or races (run under -race).
func TestConcurrentRemoveVsWriteRead(t *testing.T) {
	s := newTestStore()
	const (
		workers = 4
		rounds  = 200
		size    = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + w)}, size)
			for i := 0; i < rounds; i++ {
				if _, err := s.Write("/contested", 0, payload); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < rounds; i++ {
				n, err := s.Read("/contested", 0, buf)
				if err != nil {
					if errors.Is(err, ErrNotExist) || errors.Is(err, ErrShortRead) {
						continue // removed, or read raced file creation
					}
					t.Errorf("reader: %v", err)
					return
				}
				if n != size {
					t.Errorf("reader: short read %d without error", n)
					return
				}
				first := buf[0]
				if first < 'a' || first >= 'a'+workers {
					t.Errorf("reader: byte not written by any writer: %q", first)
					return
				}
				for j := range buf {
					if buf[j] != first {
						t.Errorf("torn read at byte %d: %q vs %q", j, buf[j], first)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Remove("/contested"); err != nil && !errors.Is(err, ErrNotExist) {
					t.Errorf("remover: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// The survivors settle: one final write must fully stick.
	want := bytes.Repeat([]byte{'z'}, size)
	if _, err := s.Write("/contested", 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := s.Read("/contested", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("final state torn: %q", got)
	}
}

func TestRandomWritesMatchReference(t *testing.T) {
	s := NewStore(Config{StripeSize: 16, OSTs: 3})
	rng := rand.New(rand.NewSource(11))
	ref := make([]byte, 4096)
	maxEnd := int64(0)
	for i := 0; i < 200; i++ {
		off := int64(rng.Intn(3500))
		n := rng.Intn(500) + 1
		payload := make([]byte, n)
		rng.Read(payload)
		if _, err := s.Write("/r", off, payload); err != nil {
			t.Fatal(err)
		}
		copy(ref[off:off+int64(n)], payload)
		if end := off + int64(n); end > maxEnd {
			maxEnd = end
		}
	}
	got := make([]byte, maxEnd)
	if _, err := s.Read("/r", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref[:maxEnd]) {
		t.Fatal("random write/read state diverged from reference")
	}
	info, _ := s.Stat("/r")
	if info.Size != maxEnd {
		t.Fatalf("size %d, want %d", info.Size, maxEnd)
	}
}

func TestWriteReadProperty(t *testing.T) {
	s := NewStore(Config{StripeSize: 64, OSTs: 4})
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		path := fmt.Sprintf("/q%d", off)
		if _, err := s.Write(path, int64(off), payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if _, err := s.Read(path, int64(off), got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsOps(t *testing.T) {
	s := newTestStore()
	s.Create("/f")
	s.Write("/f", 0, []byte("abc"))
	s.Read("/f", 0, make([]byte, 3))
	s.Stat("/f")
	s.Remove("/f")
	m := s.Metrics()
	if m.WriteOps != 1 || m.ReadOps != 1 || m.MetaOps != 3 {
		t.Fatalf("ops: %+v", m)
	}
}

func TestDefaults(t *testing.T) {
	s := NewStore(Config{})
	cfg := s.Config()
	if cfg.StripeSize != units.MiB || cfg.OSTs != 2 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestSetStripeOverride(t *testing.T) {
	s := NewStore(Config{StripeSize: 1024, OSTs: 2})
	if err := s.SetStripe("/wide", 8); err != nil {
		t.Fatal(err)
	}
	// 32 bytes at stripe 8 = 4 stripes → both OSTs busy; the default
	// 1024-stripe file would land on one.
	if _, err := s.Write("/wide", 0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.PerOSTBytes[0] == 0 || m.PerOSTBytes[1] == 0 {
		t.Fatalf("per-file stripe not honored: %v", m.PerOSTBytes)
	}
	// Default files still use the store stripe.
	s2 := NewStore(Config{StripeSize: 1024, OSTs: 2})
	if _, err := s2.Write("/narrow", 0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	m2 := s2.Metrics()
	if m2.PerOSTBytes[0] != 0 && m2.PerOSTBytes[1] != 0 {
		t.Fatalf("32-byte write within one default stripe hit both OSTs: %v", m2.PerOSTBytes)
	}
}
