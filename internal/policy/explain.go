package policy

import (
	"fmt"
	"sort"
)

// Explanation describes one application's outcome under an allocation —
// the Figure 7 "penalty of global optimization" view, computed for any
// policy's decision.
type Explanation struct {
	ID string
	// IONs and MBps are the allocated count and resulting bandwidth.
	IONs int
	MBps float64
	// BestIONs/BestMBps are the application's optimum if it ran alone
	// (unlimited pool).
	BestIONs int
	BestMBps float64
	// PctOfBest = 100·MBps/BestMBps.
	PctOfBest float64
	// Sacrificed is true when the application was held below 90% of its
	// alone-optimum — the cost of maximizing the global aggregate.
	Sacrificed bool
}

// Explain annotates an allocation with each application's penalty relative
// to running alone, sorted by ID.
func Explain(apps []Application, alloc Allocation) ([]Explanation, error) {
	out := make([]Explanation, 0, len(apps))
	for _, a := range apps {
		n, ok := alloc[a.ID]
		if !ok {
			return nil, fmt.Errorf("policy: allocation missing %s", a.ID)
		}
		bw, ok := a.Curve.At(n)
		if !ok {
			return nil, fmt.Errorf("policy: %s has no point at %d IONs", a.ID, n)
		}
		best := a.Curve.Best()
		e := Explanation{
			ID: a.ID, IONs: n, MBps: bw.MBps(),
			BestIONs: best.IONs, BestMBps: best.Bandwidth.MBps(),
		}
		if e.BestMBps > 0 {
			e.PctOfBest = 100 * e.MBps / e.BestMBps
		}
		e.Sacrificed = e.PctOfBest < 90
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
