// Package policy implements the I/O-node arbitration policies compared in
// the paper (§3.2): ZERO, ONE, STATIC, SIZE, PROCESS, ORACLE, and the
// MCKP-based policy that is the paper's contribution. All policies share
// one interface so the experiment harness and the arbiter service can swap
// them freely.
//
// An application's candidate allocations are the points of its bandwidth
// curve (weight = I/O nodes, value = bandwidth), which already encode the
// divisibility constraint of §3.1 — the curve only has points at counts
// that divide the application's compute nodes.
package policy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mckp"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// Application is one ready-to-run (or running) job as the arbiter sees it.
type Application struct {
	// ID uniquely identifies the job.
	ID string
	// Nodes is the number of compute nodes the job occupies.
	Nodes int
	// Processes is the job's client-process count.
	Processes int
	// Curve is the job's bandwidth-vs-I/O-node curve. An empty curve
	// means no characterization data exists yet (first execution); the
	// MCKP policy then falls back to the STATIC default for that job
	// (paper §3.1).
	Curve perfmodel.Curve
	// WriteBytes and ReadBytes are the job's transfer volumes, used by
	// the Equation-2 aggregate and by the dynamic-queue simulation.
	WriteBytes int64
	ReadBytes  int64
	// Weight scales the job's utility in the MCKP objective (internal/qos
	// class weight): a guaranteed tenant with weight w counts each MB/s of
	// its curve w times, so it wins contended I/O-node allocations. ≤0
	// means 1 — the unweighted pre-QoS objective. Only the MCKP policy
	// consults it; bandwidth aggregates (SumBandwidth, Equation2) always
	// use real bandwidth, never utility.
	Weight float64
}

// utilityWeight returns the MCKP utility multiplier (1 when unset).
func (a Application) utilityWeight() float64 {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// FromAppSpec converts a perfmodel application spec into an arbitration
// Application, using the given ID (several jobs may run the same kernel).
func FromAppSpec(id string, spec perfmodel.AppSpec) Application {
	return Application{
		ID:         id,
		Nodes:      spec.Nodes,
		Processes:  spec.Processes,
		Curve:      spec.Curve,
		WriteBytes: spec.WriteBytes,
		ReadBytes:  spec.ReadBytes,
	}
}

// Allocation maps application IDs to their assigned I/O-node counts.
type Allocation map[string]int

// Total returns the number of I/O nodes the allocation consumes.
func (a Allocation) Total() int {
	t := 0
	for _, n := range a {
		t += n
	}
	return t
}

// Policy arbitrates a fixed pool of I/O nodes among applications.
type Policy interface {
	// Name returns the policy's paper name (e.g. "MCKP", "STATIC").
	Name() string
	// Allocate decides how many I/O nodes each application receives.
	// available is the size of the forwarding pool. Implementations must
	// be deterministic.
	Allocate(apps []Application, available int) (Allocation, error)
}

// Errors shared by the policies.
var (
	ErrNoApplications = errors.New("policy: no applications to arbitrate")
	ErrNoZeroOption   = errors.New("policy: application cannot run without forwarding")
	ErrNoCurve        = errors.New("policy: application has no bandwidth curve")
)

// options returns the app's candidate ION counts in ascending order.
func options(app Application) []int {
	pts := app.Curve.Points()
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.IONs
	}
	return out
}

// positiveOptions returns the candidate counts that use forwarding.
func positiveOptions(app Application) []int {
	var out []int
	for _, o := range options(app) {
		if o > 0 {
			out = append(out, o)
		}
	}
	return out
}

// clampDown returns the largest option ≤ want from opts (ascending); if
// every option exceeds want it returns the smallest one, so the result is
// always a valid choice.
func clampDown(opts []int, want int) (int, error) {
	if len(opts) == 0 {
		return 0, ErrNoCurve
	}
	best := opts[0]
	for _, o := range opts {
		if o <= want {
			best = o
		}
	}
	return best, nil
}

// sortedByID returns indices of apps in deterministic ID order.
func sortedByID(apps []Application) []int {
	idx := make([]int, len(apps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return apps[idx[a]].ID < apps[idx[b]].ID })
	return idx
}

// trimToFit downgrades allocations until the pool size is respected:
// repeatedly the application with the largest allocation (ties broken by
// ID) steps down to its next lower option. Applications already at their
// lowest option cannot shrink further; if nothing can shrink, an error is
// returned.
func trimToFit(apps []Application, alloc Allocation, available int) error {
	byID := make(map[string]Application, len(apps))
	for _, a := range apps {
		byID[a.ID] = a
	}
	for alloc.Total() > available {
		bestID := ""
		for id, n := range alloc {
			if bestID == "" || n > alloc[bestID] || (n == alloc[bestID] && id < bestID) {
				if lowerOption(byID[id], n) >= 0 {
					bestID = id
				}
			}
		}
		if bestID == "" {
			return fmt.Errorf("policy: cannot trim allocation into %d I/O nodes", available)
		}
		alloc[bestID] = lowerOption(byID[bestID], alloc[bestID])
	}
	return nil
}

// lowerOption returns the app's next option below cur, or -1 if none.
func lowerOption(app Application, cur int) int {
	lower := -1
	for _, o := range options(app) {
		if o < cur && o > lower {
			lower = o
		}
	}
	return lower
}

// --- ZERO ---------------------------------------------------------------

// Zero assigns no forwarding nodes to anyone: every application accesses
// the PFS directly. It fails if some application cannot run unforwarded.
type Zero struct{}

// Name implements Policy.
func (Zero) Name() string { return "ZERO" }

// Allocate implements Policy.
func (Zero) Allocate(apps []Application, _ int) (Allocation, error) {
	if len(apps) == 0 {
		return nil, ErrNoApplications
	}
	alloc := make(Allocation, len(apps))
	for _, a := range apps {
		if _, ok := a.Curve.At(0); !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoZeroOption, a.ID)
		}
		alloc[a.ID] = 0
	}
	return alloc, nil
}

// --- ONE ----------------------------------------------------------------

// One assigns exactly one dedicated I/O node to every application. Like
// the paper's diagnostic use of it, the pool size is not enforced: the
// policy exists to expose the cost of naive forwarding.
type One struct{}

// Name implements Policy.
func (One) Name() string { return "ONE" }

// Allocate implements Policy.
func (One) Allocate(apps []Application, _ int) (Allocation, error) {
	if len(apps) == 0 {
		return nil, ErrNoApplications
	}
	alloc := make(Allocation, len(apps))
	for _, a := range apps {
		if _, ok := a.Curve.At(1); !ok {
			return nil, fmt.Errorf("policy: %s has no 1-I/O-node point", a.ID)
		}
		alloc[a.ID] = 1
	}
	return alloc, nil
}

// --- STATIC -------------------------------------------------------------

// Static reproduces the deployment policy of production machines: each
// application receives I/O nodes in proportion to its compute-node count
// at the machine's fixed compute-to-I/O-node ratio R = C/F, with a minimum
// of one (forwarding is mandatory under STATIC). The tentative share
// floor(Nodes/R) is clamped down to the application's nearest candidate
// count, and the result is trimmed to the pool if needed.
//
// SystemCompute and SystemIONs define the machine ratio. If SystemCompute
// is zero, the ratio is derived from the applications being arbitrated and
// the available pool (the §5.2 standalone setting).
type Static struct {
	SystemCompute int
	SystemIONs    int
}

// Name implements Policy.
func (Static) Name() string { return "STATIC" }

// Allocate implements Policy.
func (p Static) Allocate(apps []Application, available int) (Allocation, error) {
	if len(apps) == 0 {
		return nil, ErrNoApplications
	}
	c, f := p.SystemCompute, p.SystemIONs
	if c <= 0 || f <= 0 {
		c, f = 0, available
		for _, a := range apps {
			c += a.Nodes
		}
	}
	if f <= 0 {
		return nil, fmt.Errorf("policy: STATIC needs a positive I/O-node pool")
	}
	ratio := float64(c) / float64(f)
	alloc := make(Allocation, len(apps))
	for _, a := range apps {
		opts := positiveOptions(a)
		if len(opts) == 0 {
			return nil, fmt.Errorf("%w: %s has no forwarding option", ErrNoCurve, a.ID)
		}
		want := int(math.Floor(float64(a.Nodes) / ratio))
		if want < 1 {
			want = 1
		}
		n, err := clampDown(opts, want)
		if err != nil {
			return nil, fmt.Errorf("policy: %s: %w", a.ID, err)
		}
		alloc[a.ID] = n
	}
	if err := trimToFit(apps, alloc, available); err != nil {
		return nil, err
	}
	return alloc, nil
}

// --- SIZE and PROCESS ---------------------------------------------------

// Proportional implements the paper's SIZE and PROCESS policies: the pool
// is divided among the running applications in proportion to their size
// (compute nodes for SIZE, client processes for PROCESS):
// round(F·sa/Σs), clamped to the application's candidate counts. Unlike
// STATIC, a small enough share rounds to zero, and the whole pool is
// distributed even when few compute nodes are in use.
type Proportional struct {
	// ByProcesses selects the PROCESS variant; otherwise SIZE.
	ByProcesses bool
}

// Name implements Policy.
func (p Proportional) Name() string {
	if p.ByProcesses {
		return "PROCESS"
	}
	return "SIZE"
}

func (p Proportional) size(a Application) float64 {
	if p.ByProcesses {
		return float64(a.Processes)
	}
	return float64(a.Nodes)
}

// Allocate implements Policy.
func (p Proportional) Allocate(apps []Application, available int) (Allocation, error) {
	if len(apps) == 0 {
		return nil, ErrNoApplications
	}
	var total float64
	for _, a := range apps {
		total += p.size(a)
	}
	if total == 0 {
		return nil, fmt.Errorf("policy: %s: all applications have zero size", p.Name())
	}
	alloc := make(Allocation, len(apps))
	for _, a := range apps {
		share := float64(available) * p.size(a) / total
		want := int(math.Round(share))
		if want == 0 {
			// The application is too small for a dedicated forwarder.
			if _, ok := a.Curve.At(0); ok {
				alloc[a.ID] = 0
				continue
			}
			want = 1 // direct access not permitted: smallest option
		}
		n, err := clampDown(positiveOptions(a), want)
		if err != nil {
			return nil, fmt.Errorf("policy: %s: %s: %w", p.Name(), a.ID, err)
		}
		alloc[a.ID] = n
	}
	if err := trimToFit(apps, alloc, available); err != nil {
		return nil, err
	}
	return alloc, nil
}

// --- ORACLE -------------------------------------------------------------

// Oracle assigns every application the I/O-node count at which its curve
// peaks, disregarding the pool size entirely. It is the paper's fictitious
// upper bound for the achievable aggregate bandwidth.
type Oracle struct{}

// Name implements Policy.
func (Oracle) Name() string { return "ORACLE" }

// Allocate implements Policy.
func (Oracle) Allocate(apps []Application, _ int) (Allocation, error) {
	if len(apps) == 0 {
		return nil, ErrNoApplications
	}
	alloc := make(Allocation, len(apps))
	for _, a := range apps {
		if a.Curve.Len() == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoCurve, a.ID)
		}
		alloc[a.ID] = a.Curve.Best().IONs
	}
	return alloc, nil
}

// --- MCKP ---------------------------------------------------------------

// Solver is the signature shared by the exact and heuristic MCKP solvers.
type Solver func(mckp.Problem) (mckp.Solution, error)

// MCKP is the paper's arbitration policy: one knapsack class per
// application, one item per candidate I/O-node count (weight = count,
// value = bandwidth), capacity = available pool. Solving the MCKP yields
// the allocation that maximizes the aggregate bandwidth.
type MCKP struct {
	// Solve picks the solver; nil means the exact DP (the paper's
	// choice).
	Solve Solver
	// Fallback supplies allocations for applications without curve data
	// (first execution). nil means the STATIC default, as in §3.1.
	Fallback Policy
}

// Name implements Policy.
func (MCKP) Name() string { return "MCKP" }

// Allocate implements Policy.
func (p MCKP) Allocate(apps []Application, available int) (Allocation, error) {
	if len(apps) == 0 {
		return nil, ErrNoApplications
	}
	solve := p.Solve
	if solve == nil {
		solve = mckp.SolveDP
	}

	// Split off uncharacterized applications: they get the machine
	// default so their first run is not penalized (§3.1).
	var known, unknown []Application
	for _, a := range apps {
		if a.Curve.Len() == 0 {
			unknown = append(unknown, a)
		} else {
			known = append(known, a)
		}
	}
	alloc := make(Allocation, len(apps))
	if len(unknown) > 0 {
		fb := p.Fallback
		if fb == nil {
			fb = Static{}
		}
		// Uncharacterized applications have no curve to read options
		// from; synthesize the standard option set (powers of two
		// dividing the node count) so the fallback policy can choose.
		withOpts := make([]Application, len(unknown))
		for i, a := range unknown {
			withOpts[i] = a
			withOpts[i].Curve = syntheticOptions(a.Nodes, available)
		}
		fbAlloc, err := fb.Allocate(withOpts, available)
		if err != nil {
			return nil, fmt.Errorf("policy: MCKP fallback: %w", err)
		}
		for id, n := range fbAlloc {
			alloc[id] = n
		}
		available -= fbAlloc.Total()
		if available < 0 {
			available = 0
		}
	}
	if len(known) == 0 {
		return alloc, nil
	}

	prob := mckp.Problem{Capacity: available}
	order := sortedByID(known)
	for _, i := range order {
		a := known[i]
		cls := mckp.Class{Label: a.ID}
		w := a.utilityWeight()
		for _, pt := range a.Curve.Restrict(available).Points() {
			cls.Items = append(cls.Items, mckp.Item{Weight: pt.IONs, Value: pt.Bandwidth.MBps() * w})
		}
		if len(cls.Items) == 0 {
			return nil, fmt.Errorf("policy: MCKP: %s has no option within %d I/O nodes", a.ID, available)
		}
		prob.Classes = append(prob.Classes, cls)
	}
	sol, err := solve(prob)
	if err != nil {
		return nil, fmt.Errorf("policy: MCKP: %w", err)
	}
	for ci, itemIdx := range sol.Choice {
		alloc[prob.Classes[ci].Label] = prob.Classes[ci].Items[itemIdx].Weight
	}
	return alloc, nil
}

// syntheticOptions builds a zero-valued curve whose points are the
// standard candidate counts for a job of the given size: 0 (direct access)
// and the powers of two dividing the node count, up to max. It exists so
// size-based fallback policies can allocate for applications that have no
// measured curve yet.
func syntheticOptions(nodes, max int) perfmodel.Curve {
	pts := []perfmodel.Point{{IONs: 0}}
	for w := 1; w <= max; w *= 2 {
		if nodes > 0 && nodes%w == 0 {
			pts = append(pts, perfmodel.Point{IONs: w})
		}
	}
	return perfmodel.NewCurve(pts...)
}

// --- Evaluation helpers ---------------------------------------------------

// SumBandwidth is the §5.2 aggregate: the sum of each application's
// bandwidth at its allocated I/O-node count.
func SumBandwidth(apps []Application, alloc Allocation) (units.Bandwidth, error) {
	var total units.Bandwidth
	for _, a := range apps {
		n, ok := alloc[a.ID]
		if !ok {
			return 0, fmt.Errorf("policy: allocation missing application %s", a.ID)
		}
		bw, ok := a.Curve.At(n)
		if !ok {
			return 0, fmt.Errorf("policy: %s has no curve point at %d I/O nodes", a.ID, n)
		}
		total += bw
	}
	return total, nil
}

// Equation2 is the paper's aggregate bandwidth (Equation 2): the sum over
// applications of (writes+reads)/runtime, where each runtime is the
// volume divided by the application's bandwidth at its allocation. With
// per-application volumes it equals SumBandwidth; it exists separately so
// experiments can weight runtimes the way the paper does.
func Equation2(apps []Application, alloc Allocation) (units.Bandwidth, error) {
	var total units.Bandwidth
	for _, a := range apps {
		n, ok := alloc[a.ID]
		if !ok {
			return 0, fmt.Errorf("policy: allocation missing application %s", a.ID)
		}
		bw, ok := a.Curve.At(n)
		if !ok {
			return 0, fmt.Errorf("policy: %s has no curve point at %d I/O nodes", a.ID, n)
		}
		vol := a.WriteBytes + a.ReadBytes
		if vol <= 0 || bw <= 0 {
			continue
		}
		runtime := float64(vol) / float64(bw)
		total += units.Bandwidth(float64(vol) / runtime)
	}
	return total, nil
}
