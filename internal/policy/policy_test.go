package policy

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/units"
)

// fiveTwoApps returns the §5.2 six-application set as policy Applications.
func fiveTwoApps(t *testing.T) []Application {
	t.Helper()
	specs := perfmodel.SectionFiveTwoApps()
	apps := make([]Application, 0, len(specs))
	for _, s := range specs {
		apps = append(apps, FromAppSpec(s.Label, s))
	}
	return apps
}

func mustAllocate(t *testing.T, p Policy, apps []Application, avail int) Allocation {
	t.Helper()
	alloc, err := p.Allocate(apps, avail)
	if err != nil {
		t.Fatalf("%s.Allocate: %v", p.Name(), err)
	}
	return alloc
}

func TestZeroPolicy(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, Zero{}, apps, 12)
	for id, n := range alloc {
		if n != 0 {
			t.Errorf("ZERO gave %s %d nodes", id, n)
		}
	}
}

func TestZeroPolicyFailsWithoutDirectOption(t *testing.T) {
	apps := []Application{{
		ID: "x", Nodes: 8, Processes: 8,
		Curve: perfmodel.NewCurve(perfmodel.Point{IONs: 1, Bandwidth: 1}),
	}}
	if _, err := (Zero{}).Allocate(apps, 4); err == nil {
		t.Fatal("ZERO should fail when an app has no 0-ION point")
	}
}

func TestOnePolicy(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, One{}, apps, 12)
	for id, n := range alloc {
		if n != 1 {
			t.Errorf("ONE gave %s %d nodes", id, n)
		}
	}
}

// TestTable4Static: with the six §5.2 applications and 12 available I/O
// nodes, STATIC must reproduce Table 4 exactly.
func TestTable4Static(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, Static{}, apps, 12)
	want := Allocation{"BT-C": 1, "BT-D": 2, "IOR-MPI": 1, "POSIX-L": 2, "MAD": 1, "S3D": 2}
	for id, n := range want {
		if alloc[id] != n {
			t.Errorf("STATIC %s = %d, Table 4 says %d (full: %v)", id, alloc[id], n, alloc)
		}
	}
}

// TestTable4Size: SIZE coincides with STATIC in the Table 4 setting.
func TestTable4Size(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, Proportional{}, apps, 12)
	want := Allocation{"BT-C": 1, "BT-D": 2, "IOR-MPI": 1, "POSIX-L": 2, "MAD": 1, "S3D": 2}
	for id, n := range want {
		if alloc[id] != n {
			t.Errorf("SIZE %s = %d, Table 4 says %d (full: %v)", id, alloc[id], n, alloc)
		}
	}
}

// TestProcessPolicyDropsMAD: PROCESS divides by client processes; MAD's 64
// processes round to a zero share (the reason the paper reports PROCESS at
// 4.1× rather than SIZE's 4.59×).
func TestProcessPolicyDropsMAD(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, Proportional{ByProcesses: true}, apps, 12)
	want := Allocation{"BT-C": 1, "BT-D": 2, "IOR-MPI": 1, "POSIX-L": 2, "MAD": 0, "S3D": 2}
	for id, n := range want {
		if alloc[id] != n {
			t.Errorf("PROCESS %s = %d, want %d (full: %v)", id, alloc[id], n, alloc)
		}
	}
}

// TestTable4MCKP: the headline reproduction — MCKP at 12 I/O nodes must
// pick Table 4's allocation: BT-C 0, BT-D 1, IOR-MPI 8, POSIX-L 2, MAD 0,
// S3D 0.
func TestTable4MCKP(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, MCKP{}, apps, 12)
	want := Allocation{"BT-C": 0, "BT-D": 1, "IOR-MPI": 8, "POSIX-L": 2, "MAD": 0, "S3D": 0}
	for id, n := range want {
		if alloc[id] != n {
			t.Errorf("MCKP %s = %d, Table 4 says %d (full: %v)", id, alloc[id], n, alloc)
		}
	}
	if alloc.Total() > 12 {
		t.Fatalf("MCKP overweight: %d > 12", alloc.Total())
	}
}

// TestFigure6Ratios: at 12 available I/O nodes the paper reports MCKP
// outperforming STATIC and SIZE by 4.59× and PROCESS by 4.1×.
func TestFigure6Ratios(t *testing.T) {
	apps := fiveTwoApps(t)
	bw := func(p Policy) float64 {
		alloc := mustAllocate(t, p, apps, 12)
		sum, err := SumBandwidth(apps, alloc)
		if err != nil {
			t.Fatal(err)
		}
		return sum.MBps()
	}
	mckp := bw(MCKP{})
	if r := mckp / bw(Static{}); math.Abs(r-4.59) > 0.02 {
		t.Errorf("MCKP/STATIC = %.3f, paper says 4.59", r)
	}
	if r := mckp / bw(Proportional{}); math.Abs(r-4.59) > 0.02 {
		t.Errorf("MCKP/SIZE = %.3f, paper says 4.59", r)
	}
	if r := mckp / bw(Proportional{ByProcesses: true}); math.Abs(r-4.1) > 0.02 {
		t.Errorf("MCKP/PROCESS = %.3f, paper says 4.1", r)
	}
}

// TestMCKPMatchesOracleAt36: the paper reports MCKP reaching the ORACLE
// bound once 36 I/O nodes are available — and not before.
func TestMCKPMatchesOracleAt36(t *testing.T) {
	apps := fiveTwoApps(t)
	oracleAlloc := mustAllocate(t, Oracle{}, apps, 0)
	oracleBW, err := SumBandwidth(apps, oracleAlloc)
	if err != nil {
		t.Fatal(err)
	}
	at := func(n int) units.Bandwidth {
		alloc := mustAllocate(t, MCKP{}, apps, n)
		bw, err := SumBandwidth(apps, alloc)
		if err != nil {
			t.Fatal(err)
		}
		return bw
	}
	if got := at(36); math.Abs(got.MBps()-oracleBW.MBps()) > 1e-6 {
		t.Errorf("MCKP at 36 = %v, ORACLE = %v; paper says they match", got, oracleBW)
	}
	if got := at(32); got >= oracleBW {
		t.Errorf("MCKP at 32 (%v) should still trail ORACLE (%v)", got, oracleBW)
	}
}

// TestMCKPNeverBelowStatic: by optimality, MCKP's aggregate bandwidth is
// at least STATIC's at every pool size (Fig. 3's minimum ratio ≥ 1).
func TestMCKPNeverBelowStatic(t *testing.T) {
	apps := fiveTwoApps(t)
	for n := 6; n <= 48; n++ {
		staticAlloc, err := (Static{}).Allocate(apps, n)
		if err != nil {
			continue
		}
		staticBW, err := SumBandwidth(apps, staticAlloc)
		if err != nil {
			t.Fatal(err)
		}
		mckpAlloc := mustAllocate(t, MCKP{}, apps, n)
		mckpBW, err := SumBandwidth(apps, mckpAlloc)
		if err != nil {
			t.Fatal(err)
		}
		if float64(mckpBW) < float64(staticBW)-1e-6 {
			t.Fatalf("at %d IONs MCKP (%v) below STATIC (%v)", n, mckpBW, staticBW)
		}
	}
}

// TestMCKPMonotoneInPool: more available I/O nodes never reduce MCKP's
// aggregate bandwidth.
func TestMCKPMonotoneInPool(t *testing.T) {
	apps := fiveTwoApps(t)
	prev := -1.0
	for n := 0; n <= 40; n++ {
		alloc := mustAllocate(t, MCKP{}, apps, n)
		bw, err := SumBandwidth(apps, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if float64(bw) < prev-1e-6 {
			t.Fatalf("aggregate decreased at pool=%d", n)
		}
		prev = float64(bw)
	}
}

// TestMCKPRespectsPool: the allocation total never exceeds the pool.
func TestMCKPRespectsPool(t *testing.T) {
	apps := fiveTwoApps(t)
	for n := 0; n <= 40; n++ {
		alloc := mustAllocate(t, MCKP{}, apps, n)
		if alloc.Total() > n {
			t.Fatalf("pool %d: allocated %d", n, alloc.Total())
		}
	}
}

// TestMCKPFallbackForUncharacterizedApps: an application without curve data
// receives the STATIC default (§3.1) and the rest are optimized.
func TestMCKPFallbackForUncharacterizedApps(t *testing.T) {
	apps := fiveTwoApps(t)
	newApp := Application{ID: "NEW", Nodes: 16, Processes: 128}
	// Give the new app the options a 16-node job would have, but no curve.
	apps = append(apps, newApp)
	alloc := mustAllocate(t, MCKP{Fallback: One{}}, apps, 13)
	if alloc["NEW"] != 1 {
		t.Fatalf("uncharacterized app should get the fallback allocation, got %d", alloc["NEW"])
	}
	if alloc.Total() > 13 {
		t.Fatalf("total %d exceeds pool", alloc.Total())
	}
	// The characterized apps must still get the Table 4 optimum for the
	// remaining 12 nodes.
	if alloc["IOR-MPI"] != 8 {
		t.Fatalf("known apps not optimized after fallback: %v", alloc)
	}
}

func TestStaticMachineRatio(t *testing.T) {
	// §5.3 deployment: 96 compute nodes, 12 I/O nodes → R = 8.
	apps := []Application{
		FromAppSpec("HACC", mustSpec(t, "HACC")),       // 8 nodes → 1
		FromAppSpec("POSIX-L", mustSpec(t, "POSIX-L")), // 64 nodes → 8
	}
	alloc := mustAllocate(t, Static{SystemCompute: 96, SystemIONs: 12}, apps, 12)
	if alloc["HACC"] != 1 || alloc["POSIX-L"] != 8 {
		t.Fatalf("machine-ratio STATIC: %v, want HACC=1 POSIX-L=8 (paper §5.3)", alloc)
	}
}

func mustSpec(t *testing.T, label string) perfmodel.AppSpec {
	t.Helper()
	s, err := perfmodel.AppByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrimToFit(t *testing.T) {
	apps := fiveTwoApps(t)
	// Pool of 6 forces STATIC's tentative 9 total down.
	alloc := mustAllocate(t, Static{}, apps, 6)
	if alloc.Total() > 6 {
		t.Fatalf("trim failed: total %d", alloc.Total())
	}
	for id, n := range alloc {
		if n < 0 {
			t.Fatalf("negative allocation for %s", id)
		}
	}
}

func TestOraclePicksCurvePeaks(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, Oracle{}, apps, 0)
	want := Allocation{"BT-C": 8, "BT-D": 8, "IOR-MPI": 8, "POSIX-L": 8, "MAD": 4, "S3D": 0}
	for id, n := range want {
		if alloc[id] != n {
			t.Errorf("ORACLE %s = %d, want %d", id, alloc[id], n)
		}
	}
	if alloc.Total() != 36 {
		t.Fatalf("ORACLE weight = %d, want 36", alloc.Total())
	}
}

func TestEmptyApplications(t *testing.T) {
	for _, p := range []Policy{Zero{}, One{}, Static{}, Proportional{}, Proportional{ByProcesses: true}, Oracle{}, MCKP{}} {
		if _, err := p.Allocate(nil, 10); err == nil {
			t.Errorf("%s should reject an empty application set", p.Name())
		}
	}
}

func TestSumBandwidthErrors(t *testing.T) {
	apps := fiveTwoApps(t)
	if _, err := SumBandwidth(apps, Allocation{}); err == nil {
		t.Fatal("missing allocation entry should error")
	}
	bad := Allocation{}
	for _, a := range apps {
		bad[a.ID] = 3 // not a curve point
	}
	if _, err := SumBandwidth(apps, bad); err == nil {
		t.Fatal("non-option allocation should error")
	}
}

func TestEquation2MatchesSumForCurveRuntimes(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, MCKP{}, apps, 12)
	sum, err := SumBandwidth(apps, alloc)
	if err != nil {
		t.Fatal(err)
	}
	eq2, err := Equation2(apps, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.MBps()-eq2.MBps()) > 1e-6 {
		t.Fatalf("Equation2 (%v) should equal SumBandwidth (%v) with curve runtimes", eq2, sum)
	}
}

func TestAllocationTotal(t *testing.T) {
	a := Allocation{"x": 2, "y": 0, "z": 8}
	if a.Total() != 10 {
		t.Fatalf("Total = %d", a.Total())
	}
}

func TestPolicyNames(t *testing.T) {
	names := []struct {
		p    Policy
		want string
	}{
		{Zero{}, "ZERO"}, {One{}, "ONE"}, {Static{}, "STATIC"},
		{Proportional{}, "SIZE"}, {Proportional{ByProcesses: true}, "PROCESS"},
		{Oracle{}, "ORACLE"}, {MCKP{}, "MCKP"},
	}
	for _, c := range names {
		if c.p.Name() != c.want {
			t.Errorf("Name() = %q, want %q", c.p.Name(), c.want)
		}
	}
}

func TestExplain(t *testing.T) {
	apps := fiveTwoApps(t)
	alloc := mustAllocate(t, MCKP{}, apps, 12)
	exps, err := Explain(apps, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 6 {
		t.Fatalf("explanations: %d", len(exps))
	}
	byID := map[string]Explanation{}
	for _, e := range exps {
		byID[e.ID] = e
	}
	// IOR-MPI gets its global best at 12 IONs: 100%, not sacrificed.
	if e := byID["IOR-MPI"]; e.PctOfBest < 99.9 || e.Sacrificed {
		t.Fatalf("IOR-MPI explanation: %+v", e)
	}
	// BT-C is held at 0 IONs (195.7) vs its alone-best 400 at 8: sacrificed.
	if e := byID["BT-C"]; !e.Sacrificed || e.BestIONs != 8 {
		t.Fatalf("BT-C explanation: %+v", e)
	}
	// Errors for missing allocations.
	if _, err := Explain(apps, Allocation{}); err == nil {
		t.Fatal("missing allocation should fail")
	}
}
