package policy

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/units"
)

// WithShared implements the paper's §3.1 sharing extension: on systems
// where direct PFS access is impossible and I/O nodes are scarce, one
// system-wide shared I/O node is set aside, and applications may fall back
// to it instead of occupying dedicated forwarders. Per the paper's naive
// estimate, an application's bandwidth on the shared node is its
// one-I/O-node bandwidth divided by the number of running applications —
// deliberately pessimistic, so the inner policy only parks the
// least-performant applications there. The remaining N−1 nodes are
// arbitrated by the inner policy.
type WithShared struct {
	// Inner is the dedicated-node policy; nil selects MCKP.
	Inner Policy
}

// Name implements Policy.
func (p WithShared) Name() string { return "SHARED+" + p.inner().Name() }

func (p WithShared) inner() Policy {
	if p.Inner == nil {
		return MCKP{}
	}
	return p.Inner
}

// Allocate implements Policy. Applications using the shared node report
// zero dedicated I/O nodes; use AllocateShared to learn which ones they
// are.
func (p WithShared) Allocate(apps []Application, available int) (Allocation, error) {
	alloc, _, err := p.AllocateShared(apps, available)
	return alloc, err
}

// AllocateShared arbitrates and additionally returns the IDs of the
// applications that were parked on the shared I/O node.
func (p WithShared) AllocateShared(apps []Application, available int) (Allocation, []string, error) {
	if len(apps) == 0 {
		return nil, nil, ErrNoApplications
	}
	if available < 1 {
		return nil, nil, fmt.Errorf("policy: %s needs at least one I/O node for sharing", p.Name())
	}

	// Give every application without a direct-access option a synthetic
	// zero-weight choice valued at bandwidth(1)/numApps — the shared
	// node estimate.
	n := float64(len(apps))
	augmented := make([]Application, len(apps))
	synthetic := map[string]bool{}
	for i, a := range apps {
		augmented[i] = a
		if _, hasDirect := a.Curve.At(0); hasDirect {
			continue
		}
		bw1, has1 := a.Curve.At(1)
		if !has1 {
			continue // no basis for the estimate; app keeps its options
		}
		pts := append(a.Curve.Points(), perfmodel.Point{
			IONs:      0,
			Bandwidth: units.Bandwidth(float64(bw1) / n),
		})
		augmented[i].Curve = perfmodel.NewCurve(pts...)
		synthetic[a.ID] = true
	}

	// Reserve the shared node and arbitrate the rest.
	alloc, err := p.inner().Allocate(augmented, available-1)
	if err != nil {
		return nil, nil, err
	}
	var shared []string
	for id, k := range alloc {
		if k == 0 && synthetic[id] {
			shared = append(shared, id)
		}
	}
	if len(shared) == 0 {
		// Nobody needs the shared node: re-arbitrate with the full pool.
		alloc, err = p.inner().Allocate(apps, available)
		if err != nil {
			return nil, nil, err
		}
	}
	return alloc, shared, nil
}
