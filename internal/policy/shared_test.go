package policy

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/units"
)

// noDirectApps builds applications whose curves have no 0-ION point (the
// platform restriction of §5.3), with one strong and several weak ones.
func noDirectApps() []Application {
	mk := func(id string, mbps1, mbps2, mbps4, mbps8 float64) Application {
		return Application{
			ID: id, Nodes: 16, Processes: 64,
			Curve: perfmodel.NewCurve(
				perfmodel.Point{IONs: 1, Bandwidth: units.BandwidthFromMBps(mbps1)},
				perfmodel.Point{IONs: 2, Bandwidth: units.BandwidthFromMBps(mbps2)},
				perfmodel.Point{IONs: 4, Bandwidth: units.BandwidthFromMBps(mbps4)},
				perfmodel.Point{IONs: 8, Bandwidth: units.BandwidthFromMBps(mbps8)},
			),
		}
	}
	return []Application{
		mk("strong", 500, 1200, 2800, 6000),
		mk("weak-a", 50, 55, 58, 60),
		mk("weak-b", 40, 44, 46, 48),
		mk("weak-c", 30, 33, 35, 36),
	}
}

func TestWithSharedParksWeakApps(t *testing.T) {
	apps := noDirectApps()
	p := WithShared{}
	// Pool of 10: without sharing, every app must hold ≥1 dedicated node
	// (4 nodes on apps worth ≤50 MB/s each).
	alloc, shared, err := p.AllocateShared(apps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) == 0 {
		t.Fatalf("expected weak apps on the shared node, alloc %v", alloc)
	}
	for _, id := range shared {
		if id == "strong" {
			t.Fatal("the strong app must not be parked on the shared node")
		}
		if alloc[id] != 0 {
			t.Fatalf("shared user %s shows %d dedicated nodes", id, alloc[id])
		}
	}
	// Dedicated consumption must respect the reserved shared node.
	if alloc.Total() > 9 {
		t.Fatalf("dedicated allocation %d exceeds N-1 = 9", alloc.Total())
	}
	// The strong app should profit from the freed nodes.
	if alloc["strong"] < 8 {
		t.Fatalf("strong app got %d nodes; sharing should free the pool", alloc["strong"])
	}
}

func TestWithSharedBeatsPlainMCKPWhenPoolTight(t *testing.T) {
	apps := noDirectApps()
	plainAlloc, err := (MCKP{}).Allocate(apps, 10)
	if err != nil {
		t.Fatal(err)
	}
	plainBW, err := SumBandwidth(apps, plainAlloc)
	if err != nil {
		t.Fatal(err)
	}
	sharedAlloc, sharedUsers, err := (WithShared{}).AllocateShared(apps, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate: shared users get bw(1)/numApps, dedicated users their
	// curve value.
	var sharedBW float64
	users := map[string]bool{}
	for _, id := range sharedUsers {
		users[id] = true
	}
	for _, a := range apps {
		if users[a.ID] {
			bw1, _ := a.Curve.At(1)
			sharedBW += float64(bw1) / float64(len(apps))
			continue
		}
		bw, ok := a.Curve.At(sharedAlloc[a.ID])
		if !ok {
			t.Fatalf("%s: no point at %d", a.ID, sharedAlloc[a.ID])
		}
		sharedBW += float64(bw)
	}
	if sharedBW <= float64(plainBW) {
		t.Fatalf("sharing should win on a tight pool: %v vs %v MB/s",
			sharedBW/1e6, float64(plainBW)/1e6)
	}
	t.Logf("tight pool: plain MCKP %.0f MB/s, with shared node %.0f MB/s",
		plainBW.MBps(), sharedBW/1e6)
}

func TestWithSharedNoopWhenPoolAmple(t *testing.T) {
	apps := noDirectApps()
	// 32 nodes: everyone can have their optimum; nobody should share.
	alloc, shared, err := (WithShared{}).AllocateShared(apps, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != 0 {
		t.Fatalf("ample pool should not use the shared node: %v", shared)
	}
	// Full pool (not N-1) is then available: the strong app gets 8.
	if alloc["strong"] != 8 {
		t.Fatalf("strong app got %d", alloc["strong"])
	}
}

func TestWithSharedKeepsDirectOptions(t *testing.T) {
	// Apps with real direct access never get the synthetic option.
	specs := perfmodel.SectionFiveTwoApps()
	apps := make([]Application, 0, len(specs))
	for _, s := range specs {
		apps = append(apps, FromAppSpec(s.Label, s))
	}
	alloc, shared, err := (WithShared{}).AllocateShared(apps, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != 0 {
		t.Fatalf("apps with direct access should not be classified as shared users: %v", shared)
	}
	// Table 4 optimum preserved (re-arbitrated with the full pool).
	if alloc["IOR-MPI"] != 8 {
		t.Fatalf("alloc: %v", alloc)
	}
}

func TestWithSharedErrors(t *testing.T) {
	if _, _, err := (WithShared{}).AllocateShared(nil, 4); err == nil {
		t.Fatal("empty apps should fail")
	}
	if _, _, err := (WithShared{}).AllocateShared(noDirectApps(), 0); err == nil {
		t.Fatal("zero pool should fail")
	}
}

func TestWithSharedName(t *testing.T) {
	if (WithShared{}).Name() != "SHARED+MCKP" {
		t.Fatalf("name: %s", WithShared{}.Name())
	}
	if (WithShared{Inner: Static{}}).Name() != "SHARED+STATIC" {
		t.Fatal("inner name not reflected")
	}
}
