package policy

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/units"
)

// contender builds an application whose only non-trivial option is a
// single I/O node delivering the given bandwidth.
func contender(id string, mbps float64) Application {
	return Application{
		ID: id, Nodes: 8, Processes: 8,
		Curve: perfmodel.NewCurve(
			perfmodel.Point{IONs: 0, Bandwidth: 0},
			perfmodel.Point{IONs: 1, Bandwidth: units.BandwidthFromMBps(mbps)},
		),
	}
}

// TestMCKPWeightFlipsContendedAllocation pins the QoS weighting contract:
// with one I/O node and two contenders, the unweighted objective gives the
// node to the higher-bandwidth app, and a class weight large enough to
// overcome the bandwidth gap flips the allocation to the weighted tenant.
func TestMCKPWeightFlipsContendedAllocation(t *testing.T) {
	fast := contender("fast", 10)
	slow := contender("slow", 8)

	alloc := mustAllocate(t, MCKP{}, []Application{fast, slow}, 1)
	if alloc["fast"] != 1 || alloc["slow"] != 0 {
		t.Fatalf("unweighted MCKP should favor raw bandwidth: %v", alloc)
	}

	slow.Weight = 2 // utility 16 MB/s beats fast's 10
	alloc = mustAllocate(t, MCKP{}, []Application{fast, slow}, 1)
	if alloc["slow"] != 1 || alloc["fast"] != 0 {
		t.Fatalf("weight 2 should flip the contended node to slow: %v", alloc)
	}
}

// TestWeightDoesNotInflateBandwidthAggregates: weight shapes the MCKP
// objective only — SumBandwidth reports the real curve bandwidth of the
// chosen allocation, never the weighted utility.
func TestWeightDoesNotInflateBandwidthAggregates(t *testing.T) {
	fast := contender("fast", 10)
	slow := contender("slow", 8)
	slow.Weight = 2

	apps := []Application{fast, slow}
	alloc := mustAllocate(t, MCKP{}, apps, 1)
	sum, err := SumBandwidth(apps, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.MBps(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("SumBandwidth = %.3f MB/s, want slow's real 8 (not utility 16)", got)
	}
}

// TestWeightDefaultsPreserveObjective: zero and negative weights mean the
// unweighted objective, so a mixed set with no explicit weights allocates
// exactly as before the field existed.
func TestWeightDefaultsPreserveObjective(t *testing.T) {
	apps := fiveTwoApps(t)
	baseline := mustAllocate(t, MCKP{}, apps, 12)
	for i := range apps {
		apps[i].Weight = -1 // explicit ≤0: same as unset
	}
	again := mustAllocate(t, MCKP{}, apps, 12)
	for id, n := range baseline {
		if again[id] != n {
			t.Fatalf("≤0 weight changed the allocation: %s %d → %d", id, n, again[id])
		}
	}
}
