// Package qos is the single source of truth for multi-tenant policy in the
// forwarding stack: which service class an application belongs to, what
// that class guarantees (priority tier, SLO target latency), and what it is
// allowed to consume (token-bucket rate/burst, arbitration weight).
//
// The class model follows the software-defined QoS provisioning literature:
// a small number of named classes, each application mapped to exactly one.
// Three tiers order the classes:
//
//   - guaranteed: carries an SLO; its requests are scheduled ahead of
//     everything else (bounded inversion, see agios.WFQ) and its class
//     weight scales its MCKP utility so it wins contended ION allocations;
//   - standard: the default tier — unclassed traffic behaves exactly like
//     standard with weight 1, which is the pre-QoS behavior;
//   - scavenger: batch background traffic; when its token bucket is empty
//     it degrades to the direct-PFS path instead of queueing behind (or in
//     front of) anyone.
//
// Everything here is strictly opt-in: a nil *Registry or nil *Class means
// "no QoS", and every consumer (fwd admission, wire priority, weighted
// arbitration) must behave byte-for-byte like the pre-QoS stack then.
package qos

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// Tier orders service classes. The zero value is TierStandard so an
// unspecified tier means "like everyone was before QoS existed".
type Tier uint8

// Service tiers, lowest to highest entitlement.
const (
	TierStandard Tier = iota
	TierGuaranteed
	TierScavenger
)

func (t Tier) String() string {
	switch t {
	case TierGuaranteed:
		return "guaranteed"
	case TierScavenger:
		return "scavenger"
	default:
		return "standard"
	}
}

// ParseTier parses a tier name ("guaranteed", "standard", "scavenger").
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(s) {
	case "guaranteed":
		return TierGuaranteed, nil
	case "standard", "":
		return TierStandard, nil
	case "scavenger":
		return TierScavenger, nil
	default:
		return TierStandard, fmt.Errorf("qos: unknown tier %q (want guaranteed|standard|scavenger)", s)
	}
}

// Wire priorities carried in the rpc frame's priority byte. Zero means
// "unclassed" and is deliberately NOT a named constant: an unclassed
// request encodes no priority byte at all (wire compatibility), and
// schedulers treat it exactly like PriorityStandard.
const (
	PriorityScavenger  uint8 = 1
	PriorityStandard   uint8 = 2
	PriorityGuaranteed uint8 = 3
)

// WirePriority returns the priority byte requests of this tier carry.
func (t Tier) WirePriority() uint8 {
	switch t {
	case TierGuaranteed:
		return PriorityGuaranteed
	case TierScavenger:
		return PriorityScavenger
	default:
		return PriorityStandard
	}
}

// Class is one tenant policy: everything the stack needs to know to admit,
// schedule, and arbitrate an application's traffic.
type Class struct {
	// Name identifies the class in config and telemetry labels.
	Name string
	// Tier is the scheduling tier (wire priority, WFQ queue).
	Tier Tier
	// SLO is the class's target p99 operation latency. It is an
	// observability/acceptance target (asserted by the noisy-neighbor
	// scenario), not an enforcement input: admission and scheduling are
	// what make it hold.
	SLO time.Duration
	// Rate is the token-bucket refill rate in bytes per second admitted to
	// the forwarding path. 0 means unlimited (no bucket: the class is
	// priority/weight only).
	Rate int64
	// Burst is the bucket depth in bytes — the largest burst admitted at
	// full speed. 0 with a positive Rate selects one second's worth.
	Burst int64
	// Weight scales the application's MCKP utility during arbitration so
	// higher-weight tenants win contended ION allocations. ≤0 means 1
	// (the pre-QoS utility).
	Weight float64
}

// validate rejects classes that would misbehave silently.
func (c *Class) validate() error {
	if c.Name == "" {
		return fmt.Errorf("qos: class with empty name")
	}
	if c.Rate < 0 {
		return fmt.Errorf("qos: class %s: rate must not be negative, got %d", c.Name, c.Rate)
	}
	if c.Burst < 0 {
		return fmt.Errorf("qos: class %s: burst must not be negative, got %d", c.Name, c.Burst)
	}
	if c.Burst > 0 && c.Rate == 0 {
		return fmt.Errorf("qos: class %s: burst without rate never refills", c.Name)
	}
	if c.SLO < 0 {
		return fmt.Errorf("qos: class %s: slo must not be negative, got %v", c.Name, c.SLO)
	}
	if c.Weight < 0 {
		return fmt.Errorf("qos: class %s: weight must not be negative, got %g", c.Name, c.Weight)
	}
	return nil
}

// EffectiveWeight is the MCKP utility multiplier (1 for the zero value and
// for a nil class, so unclassed apps arbitrate exactly as before).
func (c *Class) EffectiveWeight() float64 {
	if c == nil || c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// WirePriority is the priority byte requests of this class carry (0 for a
// nil class: no byte on the wire at all).
func (c *Class) WirePriority() uint8 {
	if c == nil {
		return 0
	}
	return c.Tier.WirePriority()
}

// --- Token bucket ---------------------------------------------------------

// Bucket is a token bucket in byte units. The fast path (tokens available)
// is one mutex acquisition and no allocation; see fwd's admission point.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
	gauge  *telemetry.Gauge // qos_tokens_x1000, nil-safe
	now    func() time.Time // test clock
}

// NewBucket returns a full bucket refilling at rate bytes/second up to
// burst bytes (burst ≤ 0 selects one second's worth). gauge, when non-nil,
// tracks the level as floor(tokens×1000). A rate ≤ 0 returns nil: no
// admission control.
func NewBucket(rate, burst int64, gauge *telemetry.Gauge) *Bucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	b := &Bucket{rate: float64(rate), burst: float64(burst), tokens: float64(burst), gauge: gauge, now: time.Now}
	b.gauge.Set(int64(b.tokens * 1000))
	return b
}

// refillLocked credits tokens for the time since the last refill.
func (b *Bucket) refillLocked(now time.Time) {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// TryTake takes n tokens if the bucket holds at least n, reporting whether
// it did. The bucket is untouched on refusal — this is the scavenger
// admission: no debt, no pacing, the caller degrades instead. A nil bucket
// always admits.
func (b *Bucket) TryTake(n int64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	b.refillLocked(b.now())
	ok := b.tokens >= float64(n)
	if ok {
		b.tokens -= float64(n)
	}
	b.gauge.Set(int64(b.tokens * 1000))
	b.mu.Unlock()
	return ok
}

// Reserve takes n tokens unconditionally — the bucket may go negative —
// and returns how long the caller must pace before proceeding so the debt
// is repaid at the refill rate. Zero means tokens were available (the
// allocation-free fast path). This is the guaranteed/standard admission:
// the op is never refused, only deferred. A nil bucket never defers.
func (b *Bucket) Reserve(n int64) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	b.refillLocked(b.now())
	b.tokens -= float64(n)
	deficit := -b.tokens
	b.gauge.Set(int64(b.tokens * 1000))
	b.mu.Unlock()
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}

// Tokens reports the current level after a refill (for tests and debug).
func (b *Bucket) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	b.gauge.Set(int64(b.tokens * 1000))
	return b.tokens
}

// --- Registry -------------------------------------------------------------

// Registry maps application IDs to classes. A nil *Registry means "no QoS
// configured" and every lookup returns the unclassed defaults.
type Registry struct {
	classes map[string]*Class
	apps    map[string]string // appID → class name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: map[string]*Class{}, apps: map[string]string{}}
}

// Empty reports whether the registry classifies nothing (nil counts).
func (r *Registry) Empty() bool {
	return r == nil || (len(r.classes) == 0 && len(r.apps) == 0)
}

// AddClass registers (or redefines — last wins, for override layering) a
// class after validating it.
func (r *Registry) AddClass(c Class) error {
	if err := c.validate(); err != nil {
		return err
	}
	cc := c
	r.classes[c.Name] = &cc
	return nil
}

// AssignApp maps an application ID to a class name. The class may be
// defined later (override layering); Finish checks the reference.
func (r *Registry) AssignApp(appID, className string) error {
	if appID == "" {
		return fmt.Errorf("qos: app assignment with empty app id")
	}
	if className == "" {
		return fmt.Errorf("qos: app %s assigned to empty class name", appID)
	}
	r.apps[appID] = className
	return nil
}

// Finish validates cross-references: every app must name a defined class.
func (r *Registry) Finish() error {
	for app, cls := range r.apps {
		if _, ok := r.classes[cls]; !ok {
			return fmt.Errorf("qos: app %s references undefined class %q", app, cls)
		}
	}
	return nil
}

// ClassFor returns the class the application is assigned to, or nil when
// the application (or the registry) is unclassed.
func (r *Registry) ClassFor(appID string) *Class {
	if r == nil {
		return nil
	}
	name, ok := r.apps[appID]
	if !ok {
		return nil
	}
	return r.classes[name]
}

// Weight returns the application's MCKP utility multiplier (1 when
// unclassed), the hook the arbiter installs via WithWeights.
func (r *Registry) Weight(appID string) float64 {
	return r.ClassFor(appID).EffectiveWeight()
}

// String renders the registry in its own config syntax, deterministically.
func (r *Registry) String() string {
	if r.Empty() {
		return ""
	}
	var sb strings.Builder
	for _, name := range sortedKeys(r.classes) {
		c := r.classes[name]
		fmt.Fprintf(&sb, "class %s tier=%s", c.Name, c.Tier)
		if c.Rate > 0 {
			fmt.Fprintf(&sb, " rate=%d burst=%d", c.Rate, c.Burst)
		}
		if c.SLO > 0 {
			fmt.Fprintf(&sb, " slo=%v", c.SLO)
		}
		if c.Weight > 0 {
			fmt.Fprintf(&sb, " weight=%g", c.Weight)
		}
		sb.WriteByte('\n')
	}
	for _, app := range sortedKeys(r.apps) {
		fmt.Fprintf(&sb, "app %s %s\n", app, r.apps[app])
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- Config parsing -------------------------------------------------------

// Parse builds a registry from one or more config sources, applied in
// order (later sources override earlier definitions — this is how gkfwd
// layers -qos flag overrides on top of the -qos-config file). The syntax
// is line-oriented; ';' separates statements within one line so a whole
// config fits in a single flag value:
//
//	# tenant policy
//	class gold tier=guaranteed rate=64MiB burst=8MiB slo=250ms weight=4
//	class scav tier=scavenger rate=2MiB burst=256KiB weight=0.25
//	app ior-1 gold
//	app bg-scan scav
//
// Rates are bytes per second and accept binary (KiB/MiB/GiB) and decimal
// (KB/MB/GB) suffixes or bare byte counts.
func Parse(sources ...string) (*Registry, error) {
	r := NewRegistry()
	for _, src := range sources {
		sc := bufio.NewScanner(strings.NewReader(src))
		lineNo := 0
		for sc.Scan() {
			lineNo++
			for _, stmt := range strings.Split(sc.Text(), ";") {
				if err := r.parseStatement(stmt); err != nil {
					return nil, fmt.Errorf("%w (line %d: %q)", err, lineNo, strings.TrimSpace(stmt))
				}
			}
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("qos: reading config: %w", err)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseFile reads path and parses it together with any override sources.
func ParseFile(path string, overrides ...string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("qos: %w", err)
	}
	return Parse(append([]string{string(data)}, overrides...)...)
}

// parseStatement applies one "class …" or "app …" statement.
func (r *Registry) parseStatement(stmt string) error {
	stmt = strings.TrimSpace(stmt)
	if stmt == "" || strings.HasPrefix(stmt, "#") {
		return nil
	}
	fields := strings.Fields(stmt)
	switch fields[0] {
	case "class":
		if len(fields) < 2 {
			return fmt.Errorf("qos: class statement needs a name")
		}
		c := Class{Name: fields[1]}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("qos: class %s: expected key=value, got %q", c.Name, kv)
			}
			var err error
			switch key {
			case "tier":
				c.Tier, err = ParseTier(val)
			case "rate":
				c.Rate, err = ParseBytes(val)
			case "burst":
				c.Burst, err = ParseBytes(val)
			case "slo":
				c.SLO, err = time.ParseDuration(val)
			case "weight":
				c.Weight, err = strconv.ParseFloat(val, 64)
			default:
				err = fmt.Errorf("qos: class %s: unknown key %q", c.Name, key)
			}
			if err != nil {
				return fmt.Errorf("qos: class %s: %s: %w", c.Name, key, unprefix(err))
			}
		}
		return r.AddClass(c)
	case "app":
		if len(fields) != 3 {
			return fmt.Errorf("qos: app statement is `app <id> <class>`, got %q", stmt)
		}
		return r.AssignApp(fields[1], fields[2])
	default:
		return fmt.Errorf("qos: unknown statement %q (want class|app)", fields[0])
	}
}

// unprefix strips a nested "qos: " prefix so wrapped errors read once.
func unprefix(err error) error {
	if err == nil {
		return nil
	}
	if s, ok := strings.CutPrefix(err.Error(), "qos: "); ok {
		return fmt.Errorf("%s", s)
	}
	return err
}

// ParseBytes parses a byte quantity with an optional binary (KiB/MiB/GiB)
// or decimal (KB/MB/GB) suffix; a bare number is bytes.
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	num := s
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KiB", units.KiB}, {"MiB", units.MiB}, {"GiB", units.GiB},
		{"KB", units.KB}, {"MB", units.MB}, {"GB", units.GB}, {"B", 1},
	} {
		if strings.HasSuffix(s, suf.name) {
			mult = suf.mult
			num = strings.TrimSuffix(s, suf.name)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, fmt.Errorf("qos: bad byte quantity %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("qos: byte quantity %q is negative", s)
	}
	return int64(v * float64(mult)), nil
}
