package qos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/units"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"4096", 4096},
		{"4KiB", 4 * units.KiB},
		{"64MiB", 64 * units.MiB},
		{"2GiB", 2 * units.GiB},
		{"1KB", units.KB},
		{"10MB", 10 * units.MB},
		{"3GB", 3 * units.GB},
		{"512B", 512},
		{"1.5MiB", units.MiB + units.MiB/2},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "-4KiB", "MiB", "12QiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q) accepted, want error", bad)
		}
	}
}

func TestParseConfig(t *testing.T) {
	src := `
# tenant policy
class gold tier=guaranteed rate=64MiB burst=8MiB slo=250ms weight=4
class scav tier=scavenger rate=2MiB burst=256KiB weight=0.25
class plain

app ior-1 gold
app bg-scan scav
`
	r, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := r.ClassFor("ior-1")
	if g == nil || g.Name != "gold" {
		t.Fatalf("ClassFor(ior-1) = %+v, want gold", g)
	}
	if g.Tier != TierGuaranteed || g.Rate != 64*units.MiB || g.Burst != 8*units.MiB ||
		g.SLO != 250*time.Millisecond || g.Weight != 4 {
		t.Fatalf("gold parsed wrong: %+v", g)
	}
	s := r.ClassFor("bg-scan")
	if s == nil || s.Tier != TierScavenger || s.Weight != 0.25 {
		t.Fatalf("scav parsed wrong: %+v", s)
	}
	if p := r.ClassFor("plain-app"); p != nil {
		t.Fatalf("unassigned app got class %+v", p)
	}
	if w := r.Weight("ior-1"); w != 4 {
		t.Fatalf("Weight(ior-1) = %g, want 4", w)
	}
	if w := r.Weight("nobody"); w != 1 {
		t.Fatalf("Weight(nobody) = %g, want 1", w)
	}
	// A "plain" class with no knobs is standard tier, weight 1.
	r2, err := Parse(src + "\napp x plain\n")
	if err != nil {
		t.Fatal(err)
	}
	if c := r2.ClassFor("x"); c.Tier != TierStandard || c.EffectiveWeight() != 1 {
		t.Fatalf("plain class wrong: %+v", c)
	}
}

func TestParseSemicolonsAndOverrides(t *testing.T) {
	base := "class gold tier=guaranteed rate=64MiB; app a gold"
	override := "class gold tier=guaranteed rate=8MiB weight=2"
	r, err := Parse(base, override)
	if err != nil {
		t.Fatal(err)
	}
	c := r.ClassFor("a")
	if c == nil || c.Rate != 8*units.MiB || c.Weight != 2 {
		t.Fatalf("override did not win: %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"class", "needs a name"},
		{"class g tier=golden", "unknown tier"},
		{"class g rate=-1MiB", "is negative"},
		{"class g slo=banana", "slo"},
		{"class g weight=-2", "not be negative"},
		{"class g burst=4KiB", "burst without rate"},
		{"class g bogus=1", "unknown key"},
		{"class g rate", "key=value"},
		{"app a", "app <id> <class>"},
		{"app a ghost", "undefined class"},
		{"frob x y", "unknown statement"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q) accepted, want error containing %q", c.src, c.want)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qos.conf")
	if err := os.WriteFile(path, []byte("class g tier=guaranteed\napp a g\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := ParseFile(path, "class s tier=scavenger; app b s")
	if err != nil {
		t.Fatal(err)
	}
	if r.ClassFor("a").Tier != TierGuaranteed || r.ClassFor("b").Tier != TierScavenger {
		t.Fatalf("file+override parse wrong: %s", r)
	}
	if _, err := ParseFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRegistryString(t *testing.T) {
	r, err := Parse("class g tier=guaranteed rate=1MiB slo=100ms weight=2\nclass s tier=scavenger\napp a g\napp b s")
	if err != nil {
		t.Fatal(err)
	}
	// Round trip: String output re-parses to an equivalent registry.
	r2, err := Parse(r.String())
	if err != nil {
		t.Fatalf("String output did not re-parse: %v\n%s", err, r.String())
	}
	if r2.String() != r.String() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", r.String(), r2.String())
	}
	var nilReg *Registry
	if !nilReg.Empty() || nilReg.String() != "" {
		t.Fatal("nil registry should be empty")
	}
}

func TestWirePriority(t *testing.T) {
	if got := (&Class{Tier: TierGuaranteed}).WirePriority(); got != PriorityGuaranteed {
		t.Fatalf("guaranteed wire priority = %d", got)
	}
	if got := (&Class{Tier: TierScavenger}).WirePriority(); got != PriorityScavenger {
		t.Fatalf("scavenger wire priority = %d", got)
	}
	if got := (&Class{}).WirePriority(); got != PriorityStandard {
		t.Fatalf("standard wire priority = %d", got)
	}
	var nilClass *Class
	if got := nilClass.WirePriority(); got != 0 {
		t.Fatalf("nil class wire priority = %d, want 0 (no byte on the wire)", got)
	}
	if nilClass.EffectiveWeight() != 1 {
		t.Fatal("nil class weight should be 1")
	}
}

// fakeClock steps a bucket's clock deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func testBucket(rate, burst int64, g *telemetry.Gauge) (*Bucket, *fakeClock) {
	b := NewBucket(rate, burst, g)
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b.now = fc.now
	return b, fc
}

func TestBucketTryTake(t *testing.T) {
	reg := telemetry.New()
	g := reg.Gauge(`qos_tokens_x1000{app="t"}`)
	b, fc := testBucket(1000, 4000, g) // 1000 B/s, 4000 B burst
	if !b.TryTake(4000) {
		t.Fatal("full bucket refused its burst")
	}
	if b.TryTake(1) {
		t.Fatal("empty bucket admitted")
	}
	fc.advance(2 * time.Second) // +2000 tokens
	if !b.TryTake(2000) {
		t.Fatal("refilled bucket refused")
	}
	if b.TryTake(1) {
		t.Fatal("drained bucket admitted")
	}
	fc.advance(time.Hour) // refill clamps at burst
	if got := b.Tokens(); got != 4000 {
		t.Fatalf("tokens after long idle = %g, want burst 4000", got)
	}
	if g.Value() != 4000*1000 {
		t.Fatalf("gauge = %d, want %d", g.Value(), 4000*1000)
	}
}

func TestBucketReserve(t *testing.T) {
	b, fc := testBucket(1000, 1000, nil)
	if d := b.Reserve(500); d != 0 {
		t.Fatalf("in-budget reserve paced %v", d)
	}
	// Take 1500 more: bucket goes to -1000, pacing = 1000/1000 B/s = 1s.
	if d := b.Reserve(1500); d != time.Second {
		t.Fatalf("over-budget reserve paced %v, want 1s", d)
	}
	fc.advance(time.Second) // debt repaid
	if d := b.Reserve(1); d <= 0 {
		// After exactly repaying the debt the bucket is at 0; one more byte
		// must pace ~1ms.
		t.Fatalf("reserve after repay paced %v, want >0", d)
	}
}

func TestBucketNilAndUnlimited(t *testing.T) {
	var b *Bucket
	if !b.TryTake(1<<40) || b.Reserve(1<<40) != 0 || b.Tokens() != 0 {
		t.Fatal("nil bucket must admit everything")
	}
	if NewBucket(0, 0, nil) != nil {
		t.Fatal("rate 0 must mean no bucket")
	}
	// burst defaults to one second of rate.
	nb := NewBucket(500, 0, nil)
	if nb.Tokens() != 500 {
		t.Fatalf("default burst = %g, want rate 500", nb.Tokens())
	}
}

func TestClassValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.AddClass(Class{}); err == nil {
		t.Fatal("empty class name accepted")
	}
	if err := r.AddClass(Class{Name: "g", Rate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := r.AddClass(Class{Name: "g", SLO: -time.Second}); err == nil {
		t.Fatal("negative slo accepted")
	}
	if err := r.AssignApp("", "g"); err == nil {
		t.Fatal("empty app id accepted")
	}
	if err := r.AssignApp("a", ""); err == nil {
		t.Fatal("empty class name in assignment accepted")
	}
}
