// Failure tolerance for the rpc client. Three mechanisms compose, all
// opt-in via Options so the zero value preserves the original transport
// behavior exactly:
//
//   - per-call deadlines: every request/response exchange carries a wire
//     deadline (SetDeadline on the conn), so a hung daemon costs a bounded
//     wait instead of blocking the caller forever;
//   - bounded retries: transport-level failures (dial errors, broken or
//     timed-out exchanges) are retried with exponential backoff and equal
//     jitter — every operation in this protocol is idempotent (writes carry
//     absolute offsets), so replaying a request is always safe;
//   - a per-address circuit breaker: after BreakerThreshold consecutive
//     transport failures the breaker opens and calls fail fast with
//     ErrCircuitOpen until BreakerCooldown elapses, at which point a single
//     half-open probe is let through; its outcome closes or re-opens the
//     breaker.
//
// Application-level errors (the server responded, resp.Err non-empty) prove
// the server alive: they are never retried and never trip the breaker.
package rpc

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Errors surfaced by the failure-tolerance layer. Transport-level call
// failures are wrapped in ErrUnavailable so the forwarding client can
// distinguish "this I/O node is unreachable" (degrade to direct PFS
// access) from application errors that must surface to the caller.
var (
	// ErrUnavailable wraps every transport-level call failure: dial
	// errors, broken or timed-out exchanges, and breaker rejections.
	ErrUnavailable = errors.New("rpc: server unavailable")
	// ErrCircuitOpen is returned (wrapped in ErrUnavailable) when the
	// circuit breaker rejects a call without touching the network.
	ErrCircuitOpen = errors.New("rpc: circuit open")
)

// Options configures the client's failure tolerance. The zero value keeps
// the historical behavior: no deadline, no retry beyond the stale-conn
// retry, no breaker.
type Options struct {
	// CallTimeout bounds one request/response exchange on the wire (and
	// the dial that may precede it). ≤0 means no deadline.
	CallTimeout time.Duration
	// MaxRetries is the number of additional attempts after the first for
	// transport-level failures. 0 disables retries.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per retry with equal jitter. ≤0 selects 2ms when retries are on.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff growth. ≤0 selects 100ms.
	RetryBackoffMax time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// that opens the circuit. 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// one half-open probe. ≤0 selects 1s when the breaker is on.
	BreakerCooldown time.Duration
	// WireChecksum appends a CRC32C trailer to every frame this client
	// sends. Inbound frames are verified whenever they carry a trailer,
	// regardless of this setting; a mismatch is a transport failure
	// (connection discarded, retries and breaker apply). Off by default:
	// the zero value is wire-identical to protocol version 1.
	WireChecksum bool
}

// withDefaults fills the derived defaults for enabled mechanisms.
func (o Options) withDefaults() Options {
	if o.MaxRetries > 0 {
		if o.RetryBackoff <= 0 {
			o.RetryBackoff = 2 * time.Millisecond
		}
		if o.RetryBackoffMax <= 0 {
			o.RetryBackoffMax = 100 * time.Millisecond
		}
	}
	if o.BreakerThreshold > 0 && o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	return o
}

// backoffDelay returns the sleep before retry attempt i (0-based):
// exponential growth from RetryBackoff, capped at RetryBackoffMax, with
// equal jitter (half fixed, half uniformly random).
func backoffDelay(o Options, attempt int) time.Duration {
	d := o.RetryBackoff
	for i := 0; i < attempt && d < o.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > o.RetryBackoffMax {
		d = o.RetryBackoffMax
	}
	if d <= 0 {
		return 0
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// BreakerState is the circuit breaker's externally visible state.
type BreakerState int

// Breaker states: closed (calls pass), open (calls fail fast), half-open
// (one probe in flight decides).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is the per-address circuit state machine. It is pure state: the
// client translates its transition results into telemetry counters.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    BreakerState
	fails    int // consecutive transport failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a call may proceed and whether it is the half-open
// probe. When it returns ok=false the caller must fail fast.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// onSuccess records a successful exchange; it reports whether the breaker
// transitioned half-open → closed.
func (b *breaker) onSuccess() (closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	closed = b.state == BreakerHalfOpen
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	return closed
}

// onFailure records a transport failure; it reports whether the breaker
// transitioned to open.
func (b *breaker) onFailure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		return true
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// current returns the state for observation (half-open is reported even if
// the probe has not been issued yet, i.e. cooldown elapsed counts as open).
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
