package rpc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func echoServer() *Server {
	return NewServer(func(req *Message) *Message {
		return &Message{Op: req.Op, Path: req.Path, Data: req.Data}
	})
}

// TestCallRetriesStalePooledConn: a server restart invalidates the client's
// idle pool; the next Call must transparently retry on a fresh connection
// instead of failing with the stale conn's error.
func TestCallRetriesStalePooledConn(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cli := Dial(addr, 2).Instrument(reg, nil)
	defer cli.Close()

	// Warm the pool so a conn sits idle across the restart.
	if _, err := cli.Call(&Message{Op: OpPing, Path: "warm"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	resp, err := cli.Call(&Message{Op: OpPing, Path: "/after-restart"})
	if err != nil {
		t.Fatalf("call after server restart should retry on a fresh conn: %v", err)
	}
	if resp.Path != "/after-restart" {
		t.Fatalf("unexpected response %+v", resp)
	}
	// One stale conn → the retry path fired exactly once, and the
	// telemetry counters prove it.
	if got := reg.Counter("rpc_stale_retries_total").Value(); got != 1 {
		t.Fatalf("rpc_stale_retries_total = %d, want exactly 1", got)
	}
	if got := reg.Counter("rpc_calls_total").Value(); got != 2 {
		t.Fatalf("rpc_calls_total = %d, want 2 (warm + post-restart)", got)
	}
}

// TestServerRestartMidPool: many idle conns go stale at once; every
// subsequent call (including concurrent ones) must recover.
func TestServerRestartMidPool(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	const pool = 4
	reg := telemetry.New()
	cli := Dial(addr, pool).Instrument(reg, nil)
	defer cli.Close()

	// Fill the idle pool with pool connections.
	var wg sync.WaitGroup
	for i := 0; i < pool; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli.Call(&Message{Op: OpPing, Path: fmt.Sprintf("/warm%d", i)})
		}(i)
	}
	wg.Wait()
	srv.Close()

	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	errs := make(chan error, 2*pool)
	for i := 0; i < 2*pool; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/p%d", i)
			resp, err := cli.Call(&Message{Op: OpWrite, Path: path})
			if err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if resp.Path != path {
				errs <- fmt.Errorf("call %d: wrong response %q", i, resp.Path)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every stale conn is consumed exactly once: either its first use
	// failed and triggered a retry, or dialFresh evicted it while idle.
	retries := reg.Counter("rpc_stale_retries_total").Value()
	evictions := reg.Counter("rpc_stale_evictions_total").Value()
	if retries+evictions != pool {
		t.Fatalf("retries (%d) + evictions (%d) = %d, want exactly %d (one per stale conn)",
			retries, evictions, retries+evictions, pool)
	}
	if retries < 1 {
		t.Fatalf("at least one stale conn must have taken the retry path (retries=%d)", retries)
	}
}

// TestCallAfterServerGone: the retry must not mask a genuinely dead server —
// when the fresh dial fails too, the call still errors.
func TestCallAfterServerGone(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err == nil {
		t.Fatal("call with server gone should fail")
	}
}

// TestConcurrentCallClose: closing the client while calls are in flight
// must not deadlock, panic, or race; calls either succeed or report an
// error.
func TestConcurrentCallClose(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for round := 0; round < 10; round++ {
		cli := Dial(addr, 2)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if _, err := cli.Call(&Message{Op: OpPing, Path: fmt.Sprintf("/r%d", i)}); err != nil {
						return // closed mid-flight: acceptable
					}
				}
			}(w)
		}
		cli.Close()
		wg.Wait()
	}
}

// TestRetryRespectsPoolCap: a retry storm must not leak connections past
// the pool cap — after recovery the client still works with its configured
// pool size.
func TestRetryRespectsPoolCap(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer srv2.Close()
	// With a pool of one, the retry must evict the stale conn's slot
	// before dialing fresh; repeated sequential calls keep working.
	for i := 0; i < 5; i++ {
		if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	cli.mu.Lock()
	total := cli.total
	cli.mu.Unlock()
	if total > 1 {
		t.Fatalf("pool cap exceeded: total=%d, max=1", total)
	}
}
