package rpc

import (
	"fmt"
	"sync"
	"testing"
)

func echoServer() *Server {
	return NewServer(func(req *Message) *Message {
		return &Message{Op: req.Op, Path: req.Path, Data: req.Data}
	})
}

// TestCallRetriesStalePooledConn: a server restart invalidates the client's
// idle pool; the next Call must transparently retry on a fresh connection
// instead of failing with the stale conn's error.
func TestCallRetriesStalePooledConn(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(addr, 2)
	defer cli.Close()

	// Warm the pool so a conn sits idle across the restart.
	if _, err := cli.Call(&Message{Op: OpPing, Path: "warm"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	resp, err := cli.Call(&Message{Op: OpPing, Path: "/after-restart"})
	if err != nil {
		t.Fatalf("call after server restart should retry on a fresh conn: %v", err)
	}
	if resp.Path != "/after-restart" {
		t.Fatalf("unexpected response %+v", resp)
	}
}

// TestServerRestartMidPool: many idle conns go stale at once; every
// subsequent call (including concurrent ones) must recover.
func TestServerRestartMidPool(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	const pool = 4
	cli := Dial(addr, pool)
	defer cli.Close()

	// Fill the idle pool with pool connections.
	var wg sync.WaitGroup
	for i := 0; i < pool; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli.Call(&Message{Op: OpPing, Path: fmt.Sprintf("/warm%d", i)})
		}(i)
	}
	wg.Wait()
	srv.Close()

	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	errs := make(chan error, 2*pool)
	for i := 0; i < 2*pool; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/p%d", i)
			resp, err := cli.Call(&Message{Op: OpWrite, Path: path})
			if err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if resp.Path != path {
				errs <- fmt.Errorf("call %d: wrong response %q", i, resp.Path)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCallAfterServerGone: the retry must not mask a genuinely dead server —
// when the fresh dial fails too, the call still errors.
func TestCallAfterServerGone(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err == nil {
		t.Fatal("call with server gone should fail")
	}
}

// TestConcurrentCallClose: closing the client while calls are in flight
// must not deadlock, panic, or race; calls either succeed or report an
// error.
func TestConcurrentCallClose(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for round := 0; round < 10; round++ {
		cli := Dial(addr, 2)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if _, err := cli.Call(&Message{Op: OpPing, Path: fmt.Sprintf("/r%d", i)}); err != nil {
						return // closed mid-flight: acceptable
					}
				}
			}(w)
		}
		cli.Close()
		wg.Wait()
	}
}

// TestRetryRespectsPoolCap: a retry storm must not leak connections past
// the pool cap — after recovery the client still works with its configured
// pool size.
func TestRetryRespectsPoolCap(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer srv2.Close()
	// With a pool of one, the retry must evict the stale conn's slot
	// before dialing fresh; repeated sequential calls keep working.
	for i := 0; i < 5; i++ {
		if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	cli.mu.Lock()
	total := cli.total
	cli.mu.Unlock()
	if total > 1 {
		t.Fatalf("pool cap exceeded: total=%d, max=1", total)
	}
}
