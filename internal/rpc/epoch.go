// Stale-epoch fencing: the response class an I/O node returns when a
// write arrives stamped with a mapping epoch that a control-plane
// recovery has revoked. Like a busy shed, a fenced write is NOT a
// transport failure — the exchange completed, the connection is healthy,
// and the breaker records a success. It is also not an ordinary
// application error: the write was refused before touching the backend,
// so the forwarding layer's correct move is to wait for the
// post-recovery mapping and re-route (remap-and-retry), falling back to
// the direct PFS path if no fresh mapping arrives in time.
package rpc

import (
	"errors"
	"fmt"
	"strings"
)

// ErrStaleEpoch is the sentinel for errors.Is: the server rejected a
// write stamped with a revoked mapping epoch.
var ErrStaleEpoch = errors.New("rpc: stale epoch")

// staleEpochText is the wire form carried in Message.Err. Responses are
// matched by prefix so the detail suffix can evolve.
const staleEpochText = "rpc: stale epoch"

// StaleEpochError reports a write fenced by addr: the request's epoch
// was below the node's fence floor. It unwraps to ErrStaleEpoch.
type StaleEpochError struct {
	Addr  string // the I/O node that fenced the write
	Epoch uint64 // the revoked epoch the request carried
	Fence uint64 // the node's fence floor (lowest still-valid epoch)
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("%s: write epoch %d below fence %d at %s", staleEpochText, e.Epoch, e.Fence, e.Addr)
}

// Is makes errors.Is(err, ErrStaleEpoch) work on wrapped instances.
func (e *StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// FenceHint extracts the rejecting node's fence floor from a stale-epoch
// error, or 0 if err is not one. The forwarding layer uses it to wait
// for a mapping at or above the floor instead of polling blindly.
func FenceHint(err error) uint64 {
	var se *StaleEpochError
	if errors.As(err, &se) {
		return se.Fence
	}
	return 0
}

// StaleEpochErrText renders the Message.Err string a server puts on a
// fenced response. IsStaleEpochErr recognises it on the client side.
func StaleEpochErrText(epoch, fence uint64) string {
	return fmt.Sprintf("%s: write epoch %d below fence %d", staleEpochText, epoch, fence)
}

// IsStaleEpochErr reports whether a response error string marks a fenced
// write.
func IsStaleEpochErr(s string) bool { return strings.HasPrefix(s, staleEpochText) }
