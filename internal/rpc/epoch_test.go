package rpc

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestEpochTrailerByteIdentity pins the opt-in contract on the wire: a
// message with Epoch zero encodes byte-identically to one built before
// the field existed (the flag bit stays clear, no trailer bytes appear).
func TestEpochTrailerByteIdentity(t *testing.T) {
	base := &Message{Op: OpWrite, Path: "/f", Offset: 8, Data: []byte("chunk"), ClientID: "c", Seq: 2, Priority: 1}
	withZero := *base
	withZero.Epoch = 0
	for _, sum := range []bool{false, true} {
		var a, b bytes.Buffer
		if err := writeFrame(&a, base, sum); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(&b, &withZero, sum); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("sum=%v: zero epoch changed the frame bytes", sum)
		}
	}

	// And a nonzero epoch must round trip.
	m := &Message{Op: OpWrite, Path: "/f", Data: []byte("x"), Epoch: 99}
	var buf bytes.Buffer
	if err := WriteMessageChecksum(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	if got.Epoch != 99 {
		t.Fatalf("epoch lost on the wire: %d", got.Epoch)
	}
}

// TestStaleEpochErrorIdentity pins the error template: wrapped instances
// answer errors.Is(ErrStaleEpoch), expose the fence hint, and the wire
// text round-trips through the recogniser.
func TestStaleEpochErrorIdentity(t *testing.T) {
	err := &StaleEpochError{Addr: "1.2.3.4:5", Epoch: 3, Fence: 7}
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatal("StaleEpochError does not unwrap to ErrStaleEpoch")
	}
	if got := FenceHint(err); got != 7 {
		t.Fatalf("FenceHint = %d, want 7", got)
	}
	if FenceHint(errors.New("other")) != 0 {
		t.Fatal("FenceHint on unrelated error should be 0")
	}
	if !IsStaleEpochErr(StaleEpochErrText(3, 7)) {
		t.Fatal("wire text not recognised")
	}
	if IsStaleEpochErr("remap: no such file") {
		t.Fatal("unrelated error text recognised as stale epoch")
	}
}

// TestClientStaleEpochClass drives a fenced response through a live
// client: the error must surface as a typed StaleEpochError carrying the
// server's fence floor, count as a breaker success (the breaker must not
// open), and burn zero transport retries.
func TestClientStaleEpochClass(t *testing.T) {
	const fence = uint64(9)
	calls := 0
	srv := NewServer(func(req *Message) *Message {
		calls++
		if req.Op == OpWrite && req.Epoch != 0 && req.Epoch < fence {
			return &Message{Op: req.Op, Err: StaleEpochErrText(req.Epoch, fence), Epoch: fence}
		}
		return &Message{Op: req.Op, Size: int64(len(req.Data))}
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := Dial(addr, 2).WithOptions(Options{
		CallTimeout:      2 * time.Second,
		MaxRetries:       3,
		BreakerThreshold: 1, // a single transport failure would open it
		BreakerCooldown:  time.Minute,
	})
	defer cli.Close()

	resp, err := cli.Call(&Message{Op: OpWrite, Path: "/f", Data: []byte("late"), Epoch: 4})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("want ErrStaleEpoch, got %v", err)
	}
	if got := FenceHint(err); got != fence {
		t.Fatalf("fence hint = %d, want %d", got, fence)
	}
	if resp == nil || resp.Epoch != fence {
		t.Fatalf("response should carry the fence floor, got %+v", resp)
	}
	if calls != 1 {
		t.Fatalf("fenced write was transport-retried: %d handler calls", calls)
	}
	if st := cli.BreakerState(); st == BreakerOpen {
		t.Fatalf("fenced write tripped the breaker (state %s)", st)
	}

	// The connection stays healthy: a current-epoch write succeeds.
	resp2, err := cli.Call(&Message{Op: OpWrite, Path: "/f", Data: []byte("ok"), Epoch: fence})
	if err != nil {
		t.Fatalf("current-epoch write failed: %v", err)
	}
	if resp2.Size != 2 {
		t.Fatalf("ack size = %d, want 2", resp2.Size)
	}
}
