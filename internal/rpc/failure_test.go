package rpc

// Failure-tolerance tests: per-call deadlines, bounded retries with
// backoff, the per-address circuit breaker, and the pool-hygiene
// regressions for putConn (a conn that failed mid-roundTrip must never be
// pooled as healthy; a request that never touched the wire must never
// discard a healthy conn). They live alongside churn_test.go, which covers
// the pre-existing stale-conn semantics these mechanisms must preserve.

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// silentListener accepts connections and never responds: the shape of a
// hung daemon (process alive, service wedged).
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the conn open, swallow everything, answer nothing.
			go io.Copy(io.Discard, conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestCallDeadlineExpiresOnHungServer(t *testing.T) {
	ln := silentListener(t)
	reg := telemetry.New()
	cli := Dial(ln.Addr().String(), 1).
		WithOptions(Options{CallTimeout: 50 * time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()

	start := time.Now()
	_, err := cli.Call(&Message{Op: OpPing, Path: "/hung"})
	if err == nil {
		t.Fatal("call against a hung server should fail")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("hung-server failure should wrap ErrUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: took %v", elapsed)
	}
	if got := reg.Counter("rpc_deadline_expired_total").Value(); got != 1 {
		t.Fatalf("rpc_deadline_expired_total = %d, want 1", got)
	}
	// The timed-out conn must have been discarded, not pooled.
	cli.mu.Lock()
	idle, total := len(cli.idle), cli.total
	cli.mu.Unlock()
	if idle != 0 || total != 0 {
		t.Fatalf("timed-out conn leaked into the pool: idle=%d total=%d", idle, total)
	}
}

// flakyListener refuses (accepts then instantly closes) the first n
// connections, then serves echo.
func flakyListener(t *testing.T, refuse int) (net.Listener, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var seen atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if seen.Add(1) <= int64(refuse) {
				conn.Close()
				continue
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					req, err := ReadMessage(conn)
					if err != nil {
						return
					}
					if err := WriteMessage(conn, &Message{Op: req.Op, Path: req.Path, Data: req.Data}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln, &seen
}

func TestRetriesWithBackoffRecoverFromTransientFailures(t *testing.T) {
	ln, _ := flakyListener(t, 2)
	reg := telemetry.New()
	cli := Dial(ln.Addr().String(), 1).
		WithOptions(Options{MaxRetries: 4, RetryBackoff: time.Millisecond, RetryBackoffMax: 4 * time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()

	resp, err := cli.Call(&Message{Op: OpPing, Path: "/flaky"})
	if err != nil {
		t.Fatalf("retries should have recovered: %v", err)
	}
	if resp.Path != "/flaky" {
		t.Fatalf("wrong response: %+v", resp)
	}
	if got := reg.Counter("rpc_retries_total").Value(); got < 1 {
		t.Fatalf("rpc_retries_total = %d, want ≥1", got)
	}
}

func TestRetriesExhaustedSurfaceUnavailable(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // nothing is listening anymore
	cli := Dial(addr, 1).WithOptions(Options{MaxRetries: 2, RetryBackoff: time.Millisecond})
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("exhausted retries should wrap ErrUnavailable, got %v", err)
	}
}

func TestBreakerOpensRejectsAndRecovers(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cli := Dial(addr, 1).
		WithOptions(Options{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()

	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Two consecutive transport failures open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("call %d: want ErrUnavailable, got %v", i, err)
		}
	}
	if got := reg.Counter("rpc_breaker_open_total").Value(); got != 1 {
		t.Fatalf("rpc_breaker_open_total = %d, want 1", got)
	}
	if cli.BreakerState() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", cli.BreakerState())
	}

	// While open, calls fail fast with ErrCircuitOpen (no dial attempted).
	dialsBefore := reg.Counter("rpc_dials_total").Value()
	if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker should reject with ErrCircuitOpen, got %v", err)
	}
	if !errors.Is(errAfterOpen(cli), ErrUnavailable) {
		t.Fatal("breaker rejection must also wrap ErrUnavailable for failover classification")
	}
	if got := reg.Counter("rpc_dials_total").Value(); got != dialsBefore {
		t.Fatalf("rejected call still dialed (%d → %d)", dialsBefore, got)
	}
	if got := reg.Counter("rpc_breaker_rejected_total").Value(); got < 1 {
		t.Fatalf("rpc_breaker_rejected_total = %d, want ≥1", got)
	}

	// Server returns; after the cooldown a half-open probe closes the
	// breaker and normal service resumes.
	srv2 := echoServer()
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	time.Sleep(60 * time.Millisecond)
	if _, err := cli.Call(&Message{Op: OpPing, Path: "/probe"}); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if got := reg.Counter("rpc_breaker_half_open_probes_total").Value(); got != 1 {
		t.Fatalf("rpc_breaker_half_open_probes_total = %d, want 1", got)
	}
	if got := reg.Counter("rpc_breaker_close_total").Value(); got != 1 {
		t.Fatalf("rpc_breaker_close_total = %d, want 1", got)
	}
	if cli.BreakerState() != BreakerClosed {
		t.Fatalf("breaker state = %v, want closed", cli.BreakerState())
	}
}

// errAfterOpen re-issues one rejected call to capture the error chain.
func errAfterOpen(cli *Client) error {
	_, err := cli.Call(&Message{Op: OpPing})
	return err
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cli := Dial(addr, 1).
		WithOptions(Options{BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want transport failure, got %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	// Server still down: the half-open probe fails and re-opens.
	if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("probe against dead server should fail, got %v", err)
	}
	if cli.BreakerState() != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %v, want open", cli.BreakerState())
	}
	if got := reg.Counter("rpc_breaker_open_total").Value(); got != 2 {
		t.Fatalf("rpc_breaker_open_total = %d, want 2 (initial + failed probe)", got)
	}
}

// readThenCloseListener reads one full request frame, then closes the conn
// without responding — the worst mid-roundTrip shape: the request is on
// the wire, the response will never come.
func readThenCloseListener(t *testing.T, after *atomic.Bool) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					req, err := ReadMessage(conn)
					if err != nil {
						return
					}
					if !after.Load() {
						return // close mid-roundTrip, request half-served
					}
					if err := WriteMessage(conn, &Message{Op: req.Op, Path: req.Path}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestMidRoundTripFailureNeverPoolsConn is the putConn audit regression:
// a connection whose exchange broke after the request was written must be
// discarded, and the client must fully recover once the server heals.
func TestMidRoundTripFailureNeverPoolsConn(t *testing.T) {
	var healthy atomic.Bool
	ln := readThenCloseListener(t, &healthy)
	reg := telemetry.New()
	cli := Dial(ln.Addr().String(), 2).Instrument(reg, nil)
	defer cli.Close()

	if _, err := cli.Call(&Message{Op: OpWrite, Path: "/mid", Data: []byte("x")}); err == nil {
		t.Fatal("mid-roundTrip close should fail the call")
	}
	cli.mu.Lock()
	idle, total := len(cli.idle), cli.total
	cli.mu.Unlock()
	if idle != 0 || total != 0 {
		t.Fatalf("half-broken conn kept: idle=%d total=%d (must both be 0)", idle, total)
	}

	healthy.Store(true)
	resp, err := cli.Call(&Message{Op: OpWrite, Path: "/ok"})
	if err != nil {
		t.Fatalf("recovery call failed: %v", err)
	}
	if resp.Path != "/ok" {
		t.Fatalf("wrong response %+v", resp)
	}
	cli.mu.Lock()
	idle = len(cli.idle)
	cli.mu.Unlock()
	if idle != 1 {
		t.Fatalf("healthy conn should be pooled after recovery, idle=%d", idle)
	}
}

// TestValidationErrorKeepsPoolAndBreakerUntouched: a request that cannot
// be framed is a permanent local error — no dial, no retry, no breaker
// failure, no conn discarded.
func TestValidationErrorKeepsPoolAndBreakerUntouched(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := telemetry.New()
	cli := Dial(addr, 1).
		WithOptions(Options{MaxRetries: 3, RetryBackoff: time.Millisecond, BreakerThreshold: 1, BreakerCooldown: time.Minute}).
		Instrument(reg, nil)
	defer cli.Close()

	if _, err := cli.Call(&Message{Op: OpPing, Path: strings.Repeat("p", maxPath)}); err == nil {
		t.Fatal("oversized path must fail")
	}
	if got := reg.Counter("rpc_dials_total").Value(); got != 0 {
		t.Fatalf("validation failure dialed %d times, want 0", got)
	}
	if got := reg.Counter("rpc_retries_total").Value(); got != 0 {
		t.Fatalf("validation failure retried %d times, want 0", got)
	}
	if cli.BreakerState() != BreakerClosed {
		t.Fatalf("validation failure tripped the breaker (%v)", cli.BreakerState())
	}
	// The client still works.
	if _, err := cli.Call(&Message{Op: OpPing, Path: "/fine"}); err != nil {
		t.Fatalf("client wedged after validation error: %v", err)
	}
}

// TestDeadlineClearedBeforePooling: a pooled conn that completed an
// exchange under a deadline must not inherit it — a later exchange that
// starts after the old absolute deadline would fail instantly otherwise.
func TestDeadlineClearedBeforePooling(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := telemetry.New()
	cli := Dial(addr, 1).
		WithOptions(Options{CallTimeout: 40 * time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()

	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	// Sit past the first call's absolute deadline, then reuse the conn.
	time.Sleep(60 * time.Millisecond)
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatalf("pooled conn inherited an expired deadline: %v", err)
	}
	if got := reg.Counter("rpc_stale_retries_total").Value(); got != 0 {
		t.Fatalf("reuse needed the stale-retry path (%d), deadline not cleared", got)
	}
}
