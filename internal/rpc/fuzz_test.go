package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// FuzzReadMessage feeds arbitrary byte streams to the frame decoder. The
// contract under fuzz: never panic, and fail only with one of the typed
// protocol errors — io.EOF solely for an empty stream (clean end between
// frames), io.ErrUnexpectedEOF for every truncation, ErrFrameTooLarge for
// an oversized declared length, ErrChecksum for a bad trailer. A frame
// that parses must survive a re-encode/re-decode round trip.
func FuzzReadMessage(f *testing.F) {
	seed := func(m *Message, sum bool) {
		var buf bytes.Buffer
		var err error
		if sum {
			err = WriteMessageChecksum(&buf, m)
		} else {
			err = WriteMessage(&buf, m)
		}
		if err != nil {
			f.Fatal(err)
		}
		raw := buf.Bytes()
		f.Add(raw)
		f.Add(raw[:len(raw)/2])    // truncated mid-frame
		f.Add(raw[:len(raw)-1])    // truncated by one byte
		f.Add(append(raw, raw...)) // two frames back to back
		cp := append([]byte(nil), raw...)
		cp[len(cp)-1] ^= 0xFF
		f.Add(cp) // corrupted tail
	}
	seed(&Message{Op: OpPing}, false)
	seed(&Message{Op: OpWrite, Path: "/f", Offset: 64, Data: []byte("hello"), Trace: 3}, true)
	seed(&Message{Op: OpWrite, Path: "/f", ClientID: "fwd-0", Seq: 17, Replayed: true}, true)
	seed(&Message{Op: OpRead, Busy: true, RetryAfter: 500 * time.Microsecond}, false)
	seed(&Message{Op: OpWrite, Path: "/q", Data: []byte("hi"), Priority: 3}, true)
	seed(&Message{Op: OpWrite, Path: "/q", ClientID: "fwd-1", Seq: 2, Priority: 1}, false)
	seed(&Message{Op: OpWrite, Path: "/e", Data: []byte("hi"), Epoch: 42}, true)
	seed(&Message{Op: OpWrite, Path: "/e", Epoch: 7, Priority: 2, ClientID: "fwd-2", Seq: 3}, false)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // oversized length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})             // zero-length frame
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 0x01, 0x02}) // declared 16, got 2
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, 1<<20)
	f.Add(append(huge, make([]byte, 1<<20)...)) // large all-zero body

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			switch {
			case err == io.EOF:
				if len(data) != 0 {
					t.Fatalf("io.EOF on non-empty input (%d bytes); want io.ErrUnexpectedEOF for truncation", len(data))
				}
			case errors.Is(err, io.ErrUnexpectedEOF),
				errors.Is(err, ErrFrameTooLarge),
				errors.Is(err, ErrChecksum):
				// typed protocol errors: fine
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A parsed frame must re-encode and re-decode to the same message.
		var buf bytes.Buffer
		if werr := WriteMessageChecksum(&buf, m); werr != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", werr)
		}
		m2, rerr := ReadMessage(&buf)
		if rerr != nil {
			t.Fatalf("re-decode failed: %v", rerr)
		}
		if m.Op != m2.Op || m.Path != m2.Path || m.Offset != m2.Offset ||
			m.Size != m2.Size || m.Err != m2.Err || m.Trace != m2.Trace ||
			m.Busy != m2.Busy || m.RetryAfter != m2.RetryAfter ||
			m.ClientID != m2.ClientID || m.Seq != m2.Seq ||
			m.Replayed != m2.Replayed || m.Priority != m2.Priority ||
			m.Epoch != m2.Epoch ||
			!bytes.Equal(m.Data, m2.Data) {
			t.Fatalf("re-encode round trip mismatch:\n  first  %+v\n  second %+v", m, m2)
		}
	})
}

// FuzzMessageRoundTrip drives the encoder from arbitrary field values (with
// and without the checksum trailer) and asserts a lossless round trip for
// every message the validator accepts.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint8(OpWrite), "/data/f", int64(4096), int64(0), []byte("chunk"), "", uint64(1), false, uint32(0), "fwd-3", uint64(9), false, uint8(0), uint64(0), true)
	f.Add(uint8(OpRead), "", int64(-1), int64(1<<40), []byte{}, "boom", uint64(0), true, uint32(250), "", uint64(0), true, uint8(3), uint64(17), false)
	f.Fuzz(func(t *testing.T, op uint8, path string, offset, size int64, data []byte, errStr string, trace uint64, busy bool, retryUS uint32, clientID string, seq uint64, replayed bool, prio uint8, epoch uint64, sum bool) {
		m := &Message{
			Op: Op(op), Path: path, Offset: offset, Size: size, Data: data,
			Err: errStr, Trace: trace, Busy: busy,
			RetryAfter: time.Duration(retryUS) * time.Microsecond,
			ClientID:   clientID, Seq: seq, Replayed: replayed, Priority: prio,
			Epoch: epoch,
		}
		var buf bytes.Buffer
		var err error
		if sum {
			err = WriteMessageChecksum(&buf, m)
		} else {
			err = WriteMessage(&buf, m)
		}
		if err != nil {
			if len(path) >= maxPath || len(errStr) >= maxErr || len(clientID) >= maxPath || len(data) > maxData {
				return // validator rejection: expected, nothing on the wire
			}
			t.Fatalf("write rejected a valid message: %v", err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if got.Op != m.Op || got.Path != m.Path || got.Offset != m.Offset ||
			got.Size != m.Size || got.Err != m.Err || got.Trace != m.Trace ||
			got.Busy != m.Busy || got.RetryAfter != m.RetryAfter ||
			got.ClientID != m.ClientID || got.Seq != m.Seq ||
			got.Replayed != m.Replayed || got.Priority != m.Priority ||
			got.Epoch != m.Epoch ||
			!bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip mismatch (sum=%v):\n  in  %+v\n  out %+v", sum, m, got)
		}
	})
}
