package rpc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"
)

// referenceEncode is the straight-line single-buffer encoder the frame
// layout documentation describes: append every field to one slice in wire
// order, checksum the contiguous body. writeFrame is an optimisation of
// this (pooled scratch, vectored payload, segment-wise CRC) and must stay
// byte-identical to it for every message shape — that equality is the
// wire-compatibility proof for the hot-path rewrite.
func referenceEncode(m *Message, sum bool) []byte {
	hasDedup := m.ClientID != "" || m.Seq != 0
	var body []byte
	body = append(body, byte(m.Op))
	var flags byte
	if m.Busy {
		flags |= flagBusy
	}
	if sum {
		flags |= flagChecksum
	}
	if hasDedup {
		flags |= flagDedup
	}
	if m.Replayed {
		flags |= flagReplay
	}
	if m.Priority != 0 {
		flags |= flagPriority
	}
	if m.Epoch != 0 {
		flags |= flagEpoch
	}
	body = append(body, flags)
	body = binary.BigEndian.AppendUint32(body, retryAfterMicros(m.RetryAfter))
	body = binary.BigEndian.AppendUint64(body, m.Trace)
	body = binary.BigEndian.AppendUint16(body, uint16(len(m.Path)))
	body = append(body, m.Path...)
	body = binary.BigEndian.AppendUint64(body, uint64(m.Offset))
	body = binary.BigEndian.AppendUint64(body, uint64(m.Size))
	body = binary.BigEndian.AppendUint32(body, uint32(len(m.Data)))
	body = append(body, m.Data...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(m.Err)))
	body = append(body, m.Err...)
	if hasDedup {
		body = binary.BigEndian.AppendUint16(body, uint16(len(m.ClientID)))
		body = append(body, m.ClientID...)
		body = binary.BigEndian.AppendUint64(body, m.Seq)
	}
	if m.Priority != 0 {
		body = append(body, m.Priority)
	}
	if m.Epoch != 0 {
		body = binary.BigEndian.AppendUint64(body, m.Epoch)
	}
	if sum {
		body = binary.BigEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
	}
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

func TestWriteFrameMatchesReferenceEncoder(t *testing.T) {
	payloadSizes := []int{0, 1, 100, vectoredMin - 1, vectoredMin, vectoredMin + 1, 64 << 10, 512 << 10}
	msgs := func(data []byte) []*Message {
		return []*Message{
			{Op: OpWrite, Path: "/a/b", Offset: 1 << 30, Size: int64(len(data)), Data: data, Trace: 42},
			{Op: OpRead, Path: "/r", Data: data, Err: "short read"},
			{Op: OpWrite, Path: "/d", Data: data, ClientID: "client-7", Seq: 99},
			{Op: OpWrite, Data: data, Busy: true, RetryAfter: 250 * time.Microsecond, Replayed: true, ClientID: "c", Seq: 1},
			{Op: OpWrite, Path: "/q", Data: data, Priority: 3},
			{Op: OpWrite, Path: "/q2", Data: data, Priority: 1, ClientID: "client-7", Seq: 4, Trace: 7},
			{Op: OpWrite, Path: "/e", Data: data, Epoch: 12},
			{Op: OpWrite, Path: "/e2", Data: data, Epoch: 1 << 40, Priority: 2, ClientID: "client-9", Seq: 6},
		}
	}
	for _, sz := range payloadSizes {
		data := make([]byte, sz)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if sz == 0 {
			data = nil
		}
		for mi, m := range msgs(data) {
			for _, sum := range []bool{false, true} {
				var got bytes.Buffer
				if err := writeFrame(&got, m, sum); err != nil {
					t.Fatalf("size %d msg %d sum %v: %v", sz, mi, sum, err)
				}
				want := referenceEncode(m, sum)
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("size %d msg %d sum %v: frame bytes diverge from reference encoder (%d vs %d bytes)",
						sz, mi, sum, got.Len(), len(want))
				}
			}
		}
	}
}

// TestReleaseIdempotentAndSafe pins the release-seam contract: Release on
// nil, on caller-built messages, and called twice must all be harmless.
func TestReleaseIdempotentAndSafe(t *testing.T) {
	var nilMsg *Message
	nilMsg.Release()
	m := &Message{Op: OpWrite, Data: []byte("caller-owned")}
	m.Release()
	m.Release()

	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Op: OpWrite, Path: "/p", Data: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got.Release()
	got.Release()
}

// TestPooledBufferReuse drives frames of one size class through the
// transport back to back and checks decoded payload integrity — the
// classic aliasing bug (a recycled buffer overwriting a still-referenced
// payload before the consumer copies it) shows up here.
func TestPooledBufferReuse(t *testing.T) {
	var wire bytes.Buffer
	for round := 0; round < 32; round++ {
		data := bytes.Repeat([]byte{byte(round + 1)}, 2048)
		if err := WriteMessage(&wire, &Message{Op: OpWrite, Path: "/f", Data: data}); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMessage(&wire)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range m.Data {
			if b != byte(round+1) {
				t.Fatalf("round %d: payload byte %d corrupted: %d", round, i, b)
			}
		}
		m.Release()
	}
}

// TestHandlerShallowCopyResponse pins the server-side release seam
// against the handler shape that shallow-copies the request into the
// response: request and response then share one pooled frame buffer,
// which must go back to the pool exactly once (a double release hands the
// same buffer to two connections and corrupts payloads under load).
func TestHandlerShallowCopyResponse(t *testing.T) {
	srv := NewServer(func(req *Message) *Message {
		resp := *req // shares req's pooled body
		return &resp
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(addr, 4)
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, 2048)
			for i := 0; i < 200; i++ {
				resp, err := cli.Call(&Message{Op: OpWrite, Path: "/f", Data: payload})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Data, payload) {
					errs <- fmt.Errorf("worker %d iter %d: echoed payload corrupted", w, i)
					resp.Release()
					return
				}
				resp.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkWirePathWrite512K measures the rpc layer alone — the part the
// frame pools and vectored writes own end to end: a real TCP round trip
// carrying a 512 KiB write to an acking echo server. The handler strips
// the payload and returns the request message itself, so every allocation
// reported here belongs to the transport. This benchmark carries the
// allocs/op budget enforced by make bench-hotpath (the end-to-end figure
// in livestack.BenchmarkHotPathWrite includes scheduler and dispatcher
// costs that are out of the wire path's hands).
func BenchmarkWirePathWrite512K(b *testing.B) {
	srv := NewServer(func(req *Message) *Message {
		req.Size = int64(len(req.Data))
		req.Data = nil // ack only; the pooled frame is released by the server
		return req
	})
	addr, err := srv.Listen("")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(addr, 1)
	defer cli.Close()

	payload := make([]byte, 512<<10)
	req := &Message{Op: OpWrite, Path: "/bench/wire", Data: payload}
	if _, err := cli.Call(req); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Call(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Size != int64(len(payload)) {
			b.Fatalf("ack size %d", resp.Size)
		}
		resp.Release()
	}
}
