package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// encodeV1 is an independent re-implementation of the protocol-version-1
// frame layout (pre-integrity: no flag-gated trailers existed). The
// wire-compat test compares WriteMessage output against it byte-for-byte.
func encodeV1(m *Message) []byte {
	n := 1 + 1 + 4 + 8 + 2 + len(m.Path) + 8 + 8 + 4 + len(m.Data) + 2 + len(m.Err)
	buf := make([]byte, 0, 4+n)
	var u32 [4]byte
	var u64 [8]byte
	var u16 [2]byte
	binary.BigEndian.PutUint32(u32[:], uint32(n))
	buf = append(buf, u32[:]...)
	buf = append(buf, byte(m.Op))
	var flags byte
	if m.Busy {
		flags |= 1 << 0
	}
	buf = append(buf, flags)
	binary.BigEndian.PutUint32(u32[:], retryAfterMicros(m.RetryAfter))
	buf = append(buf, u32[:]...)
	binary.BigEndian.PutUint64(u64[:], m.Trace)
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint16(u16[:], uint16(len(m.Path)))
	buf = append(buf, u16[:]...)
	buf = append(buf, m.Path...)
	binary.BigEndian.PutUint64(u64[:], uint64(m.Offset))
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(m.Size))
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(m.Data)))
	buf = append(buf, u32[:]...)
	buf = append(buf, m.Data...)
	binary.BigEndian.PutUint16(u16[:], uint16(len(m.Err)))
	buf = append(buf, u16[:]...)
	buf = append(buf, m.Err...)
	return buf
}

// TestZeroValueWireIdenticalToV1 is the acceptance proof that all integrity
// features default off: a message without a dedup identity, written without
// checksums, encodes byte-identically to the pre-integrity protocol.
func TestZeroValueWireIdenticalToV1(t *testing.T) {
	msgs := []*Message{
		{Op: OpPing},
		{Op: OpWrite, Path: "/data/f.bin", Offset: 1 << 40, Data: []byte("payload"), Trace: 77},
		{Op: OpRead, Path: "x", Offset: -1, Size: 4096},
		{Op: OpRemove, Path: "/gone", Err: "no such file"},
		{Op: OpWrite, Busy: true, RetryAfter: 250 * time.Microsecond, Path: "/shed"},
	}
	for i, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("msg %d: write: %v", i, err)
		}
		want := encodeV1(m)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("msg %d: zero-value frame differs from protocol v1:\n  got  %x\n  want %x", i, buf.Bytes(), want)
		}
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Op: OpPing},
		{Op: OpWrite, Path: "/f", Offset: 8, Data: []byte("abc"), Trace: 9},
		{Op: OpWrite, Path: "/f", ClientID: "fwd-1", Seq: 42},
		{Op: OpWrite, Path: "/f", ClientID: "fwd-1", Seq: 42, Replayed: true},
		{Op: OpWrite, Seq: 1}, // seq without id still carries the trailer
		{Op: OpRead, Busy: true, RetryAfter: time.Millisecond, ClientID: "c", Seq: 7},
	}
	for i, m := range msgs {
		for _, sum := range []bool{false, true} {
			var buf bytes.Buffer
			var err error
			if sum {
				err = WriteMessageChecksum(&buf, m)
			} else {
				err = WriteMessage(&buf, m)
			}
			if err != nil {
				t.Fatalf("msg %d sum=%v: write: %v", i, sum, err)
			}
			got, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("msg %d sum=%v: read: %v", i, sum, err)
			}
			if got.Op != m.Op || got.Path != m.Path || got.Offset != m.Offset ||
				got.Size != m.Size || got.Err != m.Err || got.Trace != m.Trace ||
				got.Busy != m.Busy || got.RetryAfter != m.RetryAfter ||
				got.ClientID != m.ClientID || got.Seq != m.Seq ||
				got.Replayed != m.Replayed || !bytes.Equal(got.Data, m.Data) {
				t.Fatalf("msg %d sum=%v: round trip mismatch:\n  in  %+v\n  out %+v", i, sum, m, got)
			}
		}
	}
}

// TestChecksumDetectsCorruption flips every body byte (and every trailer
// byte) of a checksummed frame in turn and asserts the reader rejects it.
// The flags byte (offset 5) is excluded: flipping its checksum-present bit
// makes the trailer invisible to the reader — an inherent limit of in-band
// presence negotiation, documented in DESIGN.md.
func TestChecksumDetectsCorruption(t *testing.T) {
	m := &Message{Op: OpWrite, Path: "/f", Offset: 8, Data: []byte("abcdefgh"), ClientID: "c1", Seq: 3, Trace: 5}
	var buf bytes.Buffer
	if err := WriteMessageChecksum(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	const flagsOff = 5 // 4-byte length prefix + opcode
	for i := 4; i < len(raw); i++ {
		if i == flagsOff {
			continue
		}
		cp := append([]byte(nil), raw...)
		cp[i] ^= 0x40
		if _, err := ReadMessage(bytes.NewReader(cp)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: want ErrChecksum, got %v", i, err)
		}
	}
	// Unflipped control: still reads clean.
	if _, err := ReadMessage(bytes.NewReader(raw)); err != nil {
		t.Fatalf("control read: %v", err)
	}
}

// TestChecksumInterop: a checksumming peer and a plain peer interoperate in
// both directions, because readers verify-if-present.
func TestChecksumInterop(t *testing.T) {
	for _, tc := range []struct{ serverSum, clientSum bool }{
		{true, false}, {false, true}, {true, true},
	} {
		srv := NewServer(func(req *Message) *Message {
			resp := *req
			resp.Err = ""
			return &resp
		}).WithChecksum(tc.serverSum)
		addr, err := srv.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		cli := Dial(addr, 1).WithOptions(Options{WireChecksum: tc.clientSum})
		resp, err := cli.Call(&Message{Op: OpWrite, Path: "/x", Data: []byte("d"), ClientID: "c", Seq: 1})
		if err != nil {
			t.Fatalf("server=%v client=%v: %v", tc.serverSum, tc.clientSum, err)
		}
		if resp.Path != "/x" || resp.ClientID != "c" || resp.Seq != 1 {
			t.Fatalf("server=%v client=%v: fields lost: %+v", tc.serverSum, tc.clientSum, resp)
		}
		cli.Close()
		srv.Close()
	}
}

// TestServerRejectsCorruptFrame: a corrupted checksummed request makes the
// server count a checksum error and discard the connection without
// responding — from the peer's side, a transport failure.
func TestServerRejectsCorruptFrame(t *testing.T) {
	reg := telemetry.New()
	srv := NewServer(func(req *Message) *Message {
		resp := *req
		return &resp
	}).Instrument(reg, "")
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var buf bytes.Buffer
	if err := WriteMessageChecksum(&buf, &Message{Op: OpWrite, Path: "/f", Data: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-6] ^= 0x01 // corrupt a payload byte under the CRC

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadMessage(conn); err == nil {
		t.Fatal("server answered a corrupt frame; want connection discarded")
	}
	if got := reg.Snapshot().Counters["rpc_checksum_errors_total"]; got != 1 {
		t.Fatalf("rpc_checksum_errors_total = %d, want 1", got)
	}
}

// TestClientRejectsCorruptResponse: a corrupted checksummed response is a
// transport failure on the client — counted, conn discarded, wrapped in
// ErrUnavailable after retries are exhausted.
func TestClientRejectsCorruptResponse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					req, err := ReadMessage(conn)
					if err != nil {
						return
					}
					var buf bytes.Buffer
					if err := WriteMessageChecksum(&buf, &Message{Op: req.Op, Path: req.Path}); err != nil {
						return
					}
					raw := buf.Bytes()
					raw[len(raw)-5] ^= 0x80 // corrupt under the CRC
					if _, err := conn.Write(raw); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	reg := telemetry.New()
	cli := Dial(ln.Addr().String(), 1).WithOptions(Options{MaxRetries: 1}).Instrument(reg, nil)
	defer cli.Close()
	_, err = cli.Call(&Message{Op: OpPing, Path: "/p"})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	// First attempt + stale-conn retry is not taken (fresh conn), but the
	// transport retry is: at least 2 exchanges, each a checksum error.
	if got := reg.Snapshot().Counters["rpc_checksum_errors_total"]; got < 2 {
		t.Fatalf("rpc_checksum_errors_total = %d, want >= 2", got)
	}
}

// TestTruncatedFramesUniformError: every mid-frame cut of every frame shape
// surfaces io.ErrUnexpectedEOF — never io.EOF, which is reserved for a
// clean end of stream between frames.
func TestTruncatedFramesUniformError(t *testing.T) {
	msgs := []*Message{
		{Op: OpWrite, Path: "/f", Data: []byte("abcdef")},
		{Op: OpWrite, Path: "/f", Data: []byte("abcdef"), ClientID: "c", Seq: 9},
	}
	for i, m := range msgs {
		for _, sum := range []bool{false, true} {
			var buf bytes.Buffer
			var err error
			if sum {
				err = WriteMessageChecksum(&buf, m)
			} else {
				err = WriteMessage(&buf, m)
			}
			if err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()
			for cut := 1; cut < len(raw); cut++ {
				_, err := ReadMessage(bytes.NewReader(raw[:cut]))
				if err == nil {
					t.Fatalf("msg %d sum=%v: truncation at %d read clean", i, sum, cut)
				}
				if !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("msg %d sum=%v: truncation at %d: want io.ErrUnexpectedEOF, got %v", i, sum, cut, err)
				}
			}
		}
	}
	// Empty stream is the one clean EOF.
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

// TestDeclaredLengthTooShort covers the other truncation family: a frame
// whose declared length is too small for the fields it claims to carry.
func TestDeclaredLengthTooShort(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Op: OpWrite, Path: "/f", Data: []byte("abcdef"), ClientID: "c", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw)-4; n++ {
		cp := append([]byte(nil), raw[:4+n]...)
		binary.BigEndian.PutUint32(cp[0:], uint32(n))
		_, err := ReadMessage(bytes.NewReader(cp))
		if err == nil {
			continue // shorter frames can still be self-consistent
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("declared len %d: want io.ErrUnexpectedEOF, got %v", n, err)
		}
	}
}
