// Overload protection for the rpc layer. Two halves compose:
//
//   - server-side admission limits (ServerLimits): a cap on concurrent
//     connections and a cap on in-flight requests. Above the in-flight cap
//     the server answers with a typed *busy* response — a shed — carrying a
//     retry-after hint, instead of queueing unbounded work behind the
//     handler;
//   - client-side classification: a busy response becomes a BusyError. It
//     is deliberately neither a transport failure (the exchange completed;
//     the server is provably alive, so it must never feed the circuit
//     breaker or burn transport retries) nor an application error (the
//     request was never attempted, so replaying it later is the right
//     reaction, which the fwd layer's adaptive throttle does).
//
// Both caps are opt-in: the zero ServerLimits preserves the historical
// accept-everything behavior exactly.
package rpc

import (
	"errors"
	"fmt"
	"time"
)

// ErrBusy is the sentinel every busy (shed) response wraps; match with
// errors.Is. The concrete error is a *BusyError carrying the server's
// retry-after hint.
var ErrBusy = errors.New("rpc: server busy")

// BusyError is the client-side form of a shed response.
type BusyError struct {
	// Addr is the server that shed the request.
	Addr string
	// RetryAfter is the server's hint for when to try again (0 = none).
	RetryAfter time.Duration
}

// Error implements error.
func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("rpc: server busy: %s (retry after %v)", e.Addr, e.RetryAfter)
	}
	return fmt.Sprintf("rpc: server busy: %s", e.Addr)
}

// Is makes errors.Is(err, ErrBusy) match a *BusyError.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// RetryAfterHint extracts the server's retry-after hint from a busy error
// chain (ok=false when err carries no busy response).
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var be *BusyError
	if errors.As(err, &be) {
		return be.RetryAfter, true
	}
	return 0, false
}

// ServerLimits bounds a server's concurrent work. The zero value keeps the
// historical behavior: every connection accepted, every request handled.
type ServerLimits struct {
	// MaxConns caps concurrently served connections; a connection arriving
	// above the cap is closed at accept (counted, never handled). ≤0 means
	// unlimited.
	MaxConns int
	// MaxInflight caps requests concurrently inside the handler; a request
	// arriving above the cap is answered with a busy response instead of
	// being dispatched. ≤0 means unlimited.
	MaxInflight int
	// RetryAfter is the hint attached to in-flight-cap busy responses;
	// ≤0 selects 2ms.
	RetryAfter time.Duration
}

// withDefaults fills derived defaults for enabled limits.
func (l ServerLimits) withDefaults() ServerLimits {
	if l.MaxInflight > 0 && l.RetryAfter <= 0 {
		l.RetryAfter = 2 * time.Millisecond
	}
	return l
}

// busyResponse builds the shed response for req: same op and trace (so the
// client's matching and tracing still line up), busy flag set, hint
// attached.
func busyResponse(req *Message, retryAfter time.Duration) *Message {
	return &Message{Op: req.Op, Path: req.Path, Trace: req.Trace, Busy: true, RetryAfter: retryAfter}
}
