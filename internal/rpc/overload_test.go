package rpc

// Overload-protection tests: the busy frame on the wire, server-side
// shedding at the in-flight cap, the connection cap, and the contract that
// busy responses are breaker-successes — shed is "alive and telling you
// so", and must never be confused with the transport failures that open
// circuits and trigger retries. The half-open concurrency test pins the
// breaker's single-probe admission under racing callers.

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestBusyFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	in := &Message{Op: OpWrite, Path: "/busy", Busy: true, RetryAfter: 1500 * time.Microsecond}
	go func() { WriteMessage(server, in) }()
	out, err := ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Busy {
		t.Fatal("Busy flag lost on the wire")
	}
	if out.RetryAfter != 1500*time.Microsecond {
		t.Fatalf("RetryAfter = %v, want 1.5ms", out.RetryAfter)
	}

	// A normal frame stays normal: the flag byte must default to clear.
	go func() { WriteMessage(server, &Message{Op: OpRead, Path: "/plain"}) }()
	out, err = ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if out.Busy || out.RetryAfter != 0 {
		t.Fatalf("plain frame carries busy state: %+v", out)
	}
}

func TestRetryAfterSaturatesOnOverflow(t *testing.T) {
	if got := retryAfterMicros(-time.Second); got != 0 {
		t.Fatalf("negative hint encoded as %d, want 0", got)
	}
	if got := retryAfterMicros(100 * 24 * time.Hour); got != 1<<32-1 {
		t.Fatalf("huge hint encoded as %d, want saturation", got)
	}
}

// TestServerShedsAboveMaxInflight: with MaxInflight=1 and one request
// parked in the handler, a second request must be answered busy — carrying
// the retry-after hint — while the breaker stays closed and the retry
// machinery stays idle.
func TestServerShedsAboveMaxInflight(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	reg := telemetry.New()
	srv := NewServer(func(req *Message) *Message {
		entered <- struct{}{}
		<-release
		return &Message{Op: req.Op, Path: req.Path}
	}).WithLimits(ServerLimits{MaxInflight: 1, RetryAfter: 3 * time.Millisecond}).
		Instrument(reg, "")
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := Dial(addr, 2).
		WithOptions(Options{MaxRetries: 3, RetryBackoff: time.Millisecond, BreakerThreshold: 1, BreakerCooldown: time.Minute}).
		Instrument(reg, nil)
	defer cli.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cli.Call(&Message{Op: OpWrite, Path: "/slow"}); err != nil {
			t.Errorf("parked call failed: %v", err)
		}
	}()
	<-entered // the slot is held

	_, err = cli.Call(&Message{Op: OpWrite, Path: "/shed"})
	if err == nil {
		t.Fatal("second call should have been shed")
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("shed should surface ErrBusy, got %v", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatalf("a shed is not a transport failure, but got ErrUnavailable: %v", err)
	}
	hint, ok := RetryAfterHint(err)
	if !ok || hint != 3*time.Millisecond {
		t.Fatalf("retry-after hint = %v (ok=%v), want 3ms", hint, ok)
	}

	close(release)
	wg.Wait()

	if got := reg.Counter("rpc_server_shed_total").Value(); got != 1 {
		t.Fatalf("rpc_server_shed_total = %d, want 1", got)
	}
	if got := reg.Counter("rpc_busy_responses_total").Value(); got != 1 {
		t.Fatalf("rpc_busy_responses_total = %d, want 1", got)
	}
	if got := reg.Counter("rpc_retries_total").Value(); got != 0 {
		t.Fatalf("busy response was transport-retried %d times, want 0", got)
	}
	if st := cli.BreakerState(); st != BreakerClosed {
		t.Fatalf("busy response moved the breaker to %v, want closed", st)
	}
	if got := reg.Counter("rpc_breaker_open_total").Value(); got != 0 {
		t.Fatalf("rpc_breaker_open_total = %d, want 0 — sheds must not trip breakers", got)
	}
}

// TestBusyIsBreakerSuccess: a shed must reset the breaker's consecutive
// failure count — the server answered, so earlier transport blips are
// stale evidence.
func TestBusyIsBreakerSuccess(t *testing.T) {
	srv := NewServer(func(req *Message) *Message {
		return busyResponse(req, time.Millisecond) // shed everything
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := Dial(addr, 1).
		WithOptions(Options{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	defer cli.Close()

	// Five consecutive sheds with a threshold of two: if busy were
	// misclassified as failure the breaker would have opened long ago.
	for i := 0; i < 5; i++ {
		if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrBusy) {
			t.Fatalf("call %d: want ErrBusy, got %v", i, err)
		}
	}
	if st := cli.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker = %v after 5 sheds, want closed", st)
	}
}

// TestConnCapClosesExtraConns: above MaxConns the acceptor closes new
// connections before any bytes flow; the surplus client sees a transport
// failure, and the counter records the closes.
func TestConnCapClosesExtraConns(t *testing.T) {
	reg := telemetry.New()
	parked := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := NewServer(func(req *Message) *Message {
		parked <- struct{}{}
		<-release
		return &Message{Op: req.Op, Path: req.Path}
	}).WithLimits(ServerLimits{MaxConns: 1}).Instrument(reg, "")
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first := Dial(addr, 1)
	defer first.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := first.Call(&Message{Op: OpPing, Path: "/hold"}); err != nil {
			t.Errorf("first conn's call failed: %v", err)
		}
	}()
	<-parked // the single conn slot is taken

	second := Dial(addr, 1)
	defer second.Close()
	if _, err := second.Call(&Message{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("over-cap conn should fail as transport-unavailable, got %v", err)
	}
	close(release)
	wg.Wait()

	if got := reg.Counter("rpc_server_conn_limit_closes_total").Value(); got < 1 {
		t.Fatalf("rpc_server_conn_limit_closes_total = %d, want ≥1", got)
	}
	if got := reg.Counter("rpc_server_shed_total").Value(); got != 0 {
		t.Fatalf("conn-cap closes counted as sheds: %d", got)
	}
}

// TestBreakerHalfOpenAdmitsExactlyOneProbe: with the breaker open and the
// cooldown elapsed, concurrent callers race for the half-open slot —
// exactly one reaches the server as the probe; every other racer is
// rejected with ErrUnavailable without touching the wire.
func TestBreakerHalfOpenAdmitsExactlyOneProbe(t *testing.T) {
	srv := echoServer()
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cli := Dial(addr, 8).
		WithOptions(Options{BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want transport failure to open the breaker, got %v", err)
	}
	if cli.BreakerState() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", cli.BreakerState())
	}

	// Rebind with a handler that parks the probe so the half-open window
	// stays observable while the other callers race it.
	var entered atomic.Int64
	release := make(chan struct{})
	srv2 := NewServer(func(req *Message) *Message {
		entered.Add(1)
		<-release
		return &Message{Op: req.Op, Path: req.Path}
	})
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	time.Sleep(30 * time.Millisecond) // past the cooldown

	probeDone := make(chan error, 1)
	go func() {
		_, err := cli.Call(&Message{Op: OpPing, Path: "/probe"})
		probeDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for entered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	const racers = 8
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cli.Call(&Message{Op: OpPing, Path: "/racer"})
			if errors.Is(err, ErrUnavailable) && errors.Is(err, ErrCircuitOpen) {
				rejected.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := rejected.Load(); got != racers {
		t.Fatalf("%d of %d racers rejected with ErrUnavailable/ErrCircuitOpen", got, racers)
	}
	if got := entered.Load(); got != 1 {
		t.Fatalf("%d callers reached the server during half-open, want exactly the probe", got)
	}

	close(release)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe should succeed once released: %v", err)
	}
	if cli.BreakerState() != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", cli.BreakerState())
	}
	if got := reg.Counter("rpc_breaker_half_open_probes_total").Value(); got != 1 {
		t.Fatalf("rpc_breaker_half_open_probes_total = %d, want 1", got)
	}
	if got := reg.Counter("rpc_breaker_close_total").Value(); got != 1 {
		t.Fatalf("rpc_breaker_close_total = %d, want 1", got)
	}
	if got := reg.Counter("rpc_breaker_rejected_total").Value(); got < racers {
		t.Fatalf("rpc_breaker_rejected_total = %d, want ≥%d", got, racers)
	}
}
