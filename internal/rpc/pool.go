package rpc

import (
	"net"
	"sync"
)

// Frame-buffer and message pooling for the data plane. The forwarding hot
// path moves one chunk (512 KiB by default) per frame; without pooling,
// every frame costs a frame-sized allocation on each side of the wire plus
// a payload copy, and GC mark work becomes visible at high op rates (see
// BENCH_hotpath.json). The pools below make the steady-state path
// allocation-free:
//
//   - bodies: the raw frame buffers ReadMessage decodes from and handlers
//     borrow for response payloads (GetBuffer), in three size classes so a
//     ping response never pins a chunk-sized buffer;
//   - messages: the *Message envelopes ReadMessage returns;
//   - scratch: the per-writeFrame encode state (header/trailer bytes and
//     the net.Buffers vector).
//
// Ownership rule (the "release seam"): a *Message produced by ReadMessage
// owns its backing buffer. Whoever consumes the message — copies Data out,
// or finishes writing the response it fed — calls Release exactly once;
// a message that is never released is simply garbage-collected, so
// correctness never depends on releasing. Never touch Data (or the
// Message) after Release.

// Body size classes. A getBody(n) request is served from the smallest
// class that fits; buffers above the largest class are allocated directly
// and never pooled, so one giant frame cannot pin memory.
var bodyClasses = [...]int{4 << 10, 64 << 10, 1 << 20}

var bodyPools = func() [len(bodyClasses)]*sync.Pool {
	var pools [len(bodyClasses)]*sync.Pool
	for i := range pools {
		size := bodyClasses[i]
		pools[i] = &sync.Pool{New: func() any {
			b := make([]byte, size)
			return &b
		}}
	}
	return pools
}()

// getBody returns a pooled buffer with capacity ≥ n (or a fresh unpooled
// allocation when n exceeds the largest class).
func getBody(n int) *[]byte {
	for i, size := range bodyClasses {
		if n <= size {
			return bodyPools[i].Get().(*[]byte)
		}
	}
	b := make([]byte, n)
	return &b
}

// putBody returns a buffer to the largest class it can serve.
func putBody(b *[]byte) {
	c := cap(*b)
	for i := len(bodyClasses) - 1; i >= 0; i-- {
		if c >= bodyClasses[i] {
			*b = (*b)[:c]
			bodyPools[i].Put(b)
			return
		}
	}
}

var messagePool = sync.Pool{New: func() any { return &Message{} }}

// lenBufPool recycles the 4-byte frame-length prefix buffers ReadMessage
// reads into (see the escape note there).
var lenBufPool = sync.Pool{New: func() any { return new([4]byte) }}

// GetBuffer returns a length-n byte slice drawn from the package's frame
// buffer pool. Attach it to a response with Message.SetPooledData (the
// transport returns it to the pool once the frame is written) or return
// it manually with PutBuffer. The contents are not zeroed.
func GetBuffer(n int) []byte {
	b := getBody(n)
	return (*b)[:n]
}

// PutBuffer returns a GetBuffer slice to the pool. Only call it when the
// buffer was never attached to a message; after SetPooledData the
// transport owns the release.
func PutBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	putBody(&b)
}

// SetPooledData sets b as m's payload and marks it for release: after the
// frame carrying m is written, the transport returns the buffer to the
// pool. b should come from GetBuffer (any buffer is accepted — it joins
// the pool on release).
func (m *Message) SetPooledData(b []byte) {
	m.Data = b
	full := b[:cap(b)]
	m.body = &full
}

// SharesBuffer reports whether m and o hold the same pooled frame buffer
// — the shape a handler produces by shallow-copying a request into its
// response. The server uses it to release such a shared buffer once.
func (m *Message) SharesBuffer(o *Message) bool {
	return m != nil && o != nil && m.body != nil && m.body == o.body
}

// DisownBuffer detaches m from its pooled frame buffer without returning
// the buffer to the pool (another Message still owns it). Data is left
// intact.
func (m *Message) DisownBuffer() {
	if m != nil {
		m.body = nil
	}
}

// Release returns the message's pooled resources (its backing frame
// buffer, and the envelope itself when it came from ReadMessage) and must
// be called at most once, after which neither the message nor its Data
// may be touched. Safe on nil and on messages that own nothing (then a
// no-op), so callers can release unconditionally. Releasing is optional:
// an unreleased message is garbage-collected like any other value.
func (m *Message) Release() {
	if m == nil {
		return
	}
	body, pooled := m.body, m.envelope
	if body == nil && !pooled {
		return
	}
	m.body, m.envelope = nil, false
	if body != nil {
		putBody(body)
	}
	if pooled {
		*m = Message{}
		messagePool.Put(m)
	}
}

// frameScratch is the reusable encode state for one writeFrame call: the
// header/trailer bytes (or the whole frame, for small payloads) plus the
// 3-segment write vector. vec is always rebuilt from arr[:0] so the
// backing array survives net.Buffers' consume-by-reslice.
type frameScratch struct {
	buf []byte
	arr [3][]byte
	vec net.Buffers
}

// maxScratch bounds the buffer capacity a pooled scratch may retain; the
// encode side holds at most header + path + error + trailer plus a small
// payload, so anything larger is a one-off and is left to the GC.
const maxScratch = 256 << 10

var scratchPool = sync.Pool{New: func() any {
	return &frameScratch{buf: make([]byte, 512)}
}}

func getScratch(n int) *frameScratch {
	s := scratchPool.Get().(*frameScratch)
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:cap(s.buf)]
	return s
}

func putScratch(s *frameScratch) {
	if cap(s.buf) > maxScratch {
		return
	}
	s.arr = [3][]byte{}
	s.vec = nil
	scratchPool.Put(s)
}
