// Package rpc is the forwarding layer's wire transport, standing in for the
// Mercury HPC RPC framework GekkoFS uses. It implements a compact framed
// binary protocol over TCP with connection pooling on the client side and a
// handler-dispatch server. The forwarding semantics (which server a request
// goes to, how requests are scheduled) live in the fwd and ion packages;
// this package only moves bytes.
//
// Frame layout (all integers big-endian):
//
//	uint32  frame length (bytes after this field)
//	uint8   opcode
//	uint8   flags       (bit 0: busy — the server shed this request;
//	                     bit 1: a CRC32C trailer is present;
//	                     bit 2: a dedup identity trailer is present;
//	                     bit 3: replayed — the server answered from its
//	                            dedup window instead of re-executing;
//	                     bit 4: a QoS priority trailer is present)
//	uint32  retry-after (microseconds; busy responses only, else 0)
//	uint64  trace id   (0 = untraced; see internal/telemetry)
//	uint16  path length
//	bytes   path
//	int64   offset
//	int64   size       (read length, stat results, etc.)
//	uint32  data length
//	bytes   data       (write payload or read result)
//	uint16  error length
//	bytes   error      (responses only; empty means success)
//	-- optional, bit 2 --
//	uint16  client id length
//	bytes   client id  (exactly-once identity; see internal/ion dedup)
//	uint64  sequence   (per-client, starts at 1; 0 = unstamped)
//	-- optional, bit 4 --
//	uint8   priority   (QoS scheduling tier; see internal/qos. 0 is never
//	                    encoded — an unclassed message carries no trailer)
//	-- optional, bit 1, always last --
//	uint32  CRC32C     (Castagnoli, over every body byte before it)
//
// All trailers are flag-gated so a message that carries none (and a
// writer with checksums off) encodes byte-identically to protocol
// version 1; version 2 readers accept every form, which is the whole
// negotiation.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"time"
)

// ProtoVersion identifies the frame format: version 2 added the flag-gated
// CRC32C and dedup-identity trailers. Version 1 frames are exactly the
// version 2 frames with neither flag set, so readers need no version field
// on the wire — presence bits are the negotiation.
const ProtoVersion = 2

// Op identifies the remote operation.
type Op uint8

// Remote operations understood by I/O-node daemons.
const (
	OpPing Op = iota + 1
	OpCreate
	OpWrite
	OpRead
	OpStat
	OpRemove
	OpFsync
	OpShutdown
)

func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpRemove:
		return "remove"
	case OpFsync:
		return "fsync"
	case OpShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Message is both the request and response representation.
type Message struct {
	Op     Op
	Path   string
	Offset int64
	Size   int64
	Data   []byte
	Err    string
	// Trace carries the originating request's telemetry trace ID across
	// the wire so server-side layers can append hops to the same record.
	// Zero means untraced; servers echo it back in responses.
	Trace uint64
	// Busy marks a shed response: the server is alive but refused to take
	// the request on (queue above its high watermark, in-flight cap hit).
	// A busy response is NOT a transport failure — the exchange completed
	// — and NOT an application error: the request was never attempted.
	// Clients surface it as a BusyError so the forwarding layer can
	// throttle and retry instead of failing over or tripping breakers.
	Busy bool
	// RetryAfter is the server's hint for when to try again (busy
	// responses only). Encoded on the wire as whole microseconds.
	RetryAfter time.Duration
	// ClientID and Seq are the exactly-once identity of a forwarded
	// request: ClientID names the issuing forwarding client instance, Seq
	// is its per-client sequence number (starting at 1; 0 means
	// unstamped). A daemon with a dedup window uses the pair to recognise
	// a transport-retried request it already applied and replay the cached
	// response instead of re-executing it.
	ClientID string
	Seq      uint64
	// Replayed marks a response served from the daemon's dedup window:
	// the operation was applied by an earlier attempt and this response
	// repeats its outcome without re-executing.
	Replayed bool
	// Priority is the request's QoS scheduling tier (see internal/qos:
	// 3 guaranteed, 2 standard, 1 scavenger). Zero means unclassed — no
	// priority trailer is encoded, keeping the frame byte-identical to a
	// stack without QoS — and schedulers treat unclassed like standard.
	Priority uint8
	// Epoch is the mapping epoch the sender routed under (requests), or
	// the I/O node's fence floor (stale-epoch responses). Zero means
	// unstamped — no epoch trailer is encoded, keeping the frame
	// byte-identical to a stack without epoch fencing — and daemons
	// never fence an unstamped write.
	Epoch uint64

	// body is the pooled frame buffer Data aliases (nil when the payload
	// is caller-owned), and envelope marks a Message drawn from the
	// message pool. Both are returned by Release; see pool.go for the
	// ownership rules.
	body     *[]byte
	envelope bool
}

// Flag bits for the frame's flags byte.
const (
	flagBusy     = 1 << 0
	flagChecksum = 1 << 1
	flagDedup    = 1 << 2
	flagReplay   = 1 << 3
	flagPriority = 1 << 4
	flagEpoch    = 1 << 5
)

// castagnoli is the CRC32C polynomial table used for frame checksums
// (the same polynomial iSCSI and ext4 use; hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxFrame bounds a single frame (a forwarded request carries at most one
// coalesced span, so this is generous).
const MaxFrame = 64 << 20

// MaxData bounds one message payload: half a frame minus header room.
// The forwarding layer clamps its span-coalescing limit to it so a merged
// wire request can always be framed.
const MaxData = MaxFrame/2 - 64

// Frame size limits for the variable-length fields.
const (
	maxPath = 1 << 16 // uint16 length prefix
	maxErr  = 1 << 16 // uint16 length prefix
	maxData = MaxData
)

var (
	// ErrFrameTooLarge indicates a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")
	// ErrClosed indicates use of a closed client or server.
	ErrClosed = errors.New("rpc: closed")
	// ErrChecksum indicates a frame whose CRC32C trailer does not match
	// its body: the bytes were altered in flight. It is a transport
	// failure — the connection that produced it must be discarded, since
	// framing can no longer be trusted.
	ErrChecksum = errors.New("rpc: frame checksum mismatch")
)

// validateMessage checks the frame-size limits before any byte touches the
// wire, so an unsendable message is a permanent local error — it must not
// discard a healthy connection, burn retries, or trip the circuit breaker.
func validateMessage(m *Message) error {
	if len(m.Path) >= maxPath {
		return fmt.Errorf("rpc: path too long (%d bytes)", len(m.Path))
	}
	if len(m.Err) >= maxErr {
		return fmt.Errorf("rpc: error string too long (%d bytes)", len(m.Err))
	}
	if len(m.ClientID) >= maxPath {
		return fmt.Errorf("rpc: client id too long (%d bytes)", len(m.ClientID))
	}
	if len(m.Data) > maxData {
		return fmt.Errorf("%w: %d-byte payload", ErrFrameTooLarge, len(m.Data))
	}
	return nil
}

// WriteMessage encodes m onto w as one frame, without a checksum trailer
// (the protocol-version-1 form; a dedup identity on m is still encoded).
func WriteMessage(w io.Writer, m *Message) error {
	return writeFrame(w, m, false)
}

// WriteMessageChecksum encodes m onto w as one frame with a CRC32C
// trailer. Readers verify the trailer whenever it is present, so a
// checksumming writer interoperates with any reader of this package.
func WriteMessageChecksum(w io.Writer, m *Message) error {
	return writeFrame(w, m, true)
}

// vectoredMin is the payload size at which writeFrame stops copying the
// payload into its scratch buffer and instead hands the caller's bytes to
// the connection directly as the middle segment of a vectored
// net.Buffers write (one writev syscall on TCP, no copy-in). Below it a
// single contiguous Write is cheaper than the extra iovecs, and control
// frames (pings, metadata, busy responses) stay single-write.
const vectoredMin = 8 << 10

func writeFrame(w io.Writer, m *Message, sum bool) error {
	if err := validateMessage(m); err != nil {
		return err
	}
	hasDedup := m.ClientID != "" || m.Seq != 0
	n := 1 + 1 + 4 + 8 + 2 + len(m.Path) + 8 + 8 + 4 + len(m.Data) + 2 + len(m.Err)
	if hasDedup {
		n += 2 + len(m.ClientID) + 8
	}
	if m.Priority != 0 {
		n++
	}
	if m.Epoch != 0 {
		n += 8
	}
	if sum {
		n += 4
	}
	// The scratch holds everything but the payload; small payloads are
	// copied in so the frame goes out as one Write.
	vectored := len(m.Data) >= vectoredMin
	need := 4 + n
	if vectored {
		need -= len(m.Data)
	}
	s := getScratch(need)
	defer putScratch(s)
	buf := s.buf
	binary.BigEndian.PutUint32(buf[0:], uint32(n))
	p := 4
	buf[p] = byte(m.Op)
	p++
	var flags byte
	if m.Busy {
		flags |= flagBusy
	}
	if sum {
		flags |= flagChecksum
	}
	if hasDedup {
		flags |= flagDedup
	}
	if m.Replayed {
		flags |= flagReplay
	}
	if m.Priority != 0 {
		flags |= flagPriority
	}
	if m.Epoch != 0 {
		flags |= flagEpoch
	}
	buf[p] = flags
	p++
	binary.BigEndian.PutUint32(buf[p:], retryAfterMicros(m.RetryAfter))
	p += 4
	binary.BigEndian.PutUint64(buf[p:], m.Trace)
	p += 8
	binary.BigEndian.PutUint16(buf[p:], uint16(len(m.Path)))
	p += 2
	p += copy(buf[p:], m.Path)
	binary.BigEndian.PutUint64(buf[p:], uint64(m.Offset))
	p += 8
	binary.BigEndian.PutUint64(buf[p:], uint64(m.Size))
	p += 8
	binary.BigEndian.PutUint32(buf[p:], uint32(len(m.Data)))
	p += 4
	if !vectored {
		p += copy(buf[p:], m.Data)
	}
	tail := p // trailer segment start: everything after the payload
	binary.BigEndian.PutUint16(buf[p:], uint16(len(m.Err)))
	p += 2
	p += copy(buf[p:], m.Err)
	if hasDedup {
		binary.BigEndian.PutUint16(buf[p:], uint16(len(m.ClientID)))
		p += 2
		p += copy(buf[p:], m.ClientID)
		binary.BigEndian.PutUint64(buf[p:], m.Seq)
		p += 8
	}
	if m.Priority != 0 {
		buf[p] = m.Priority
		p++
	}
	if m.Epoch != 0 {
		binary.BigEndian.PutUint64(buf[p:], m.Epoch)
		p += 8
	}
	if sum {
		// The trailer covers every body byte before it, in wire order —
		// fed segment-wise here, identical to a contiguous checksum.
		crc := crc32.Update(0, castagnoli, buf[4:tail])
		if vectored {
			crc = crc32.Update(crc, castagnoli, m.Data)
		}
		crc = crc32.Update(crc, castagnoli, buf[tail:p])
		binary.BigEndian.PutUint32(buf[p:], crc)
		p += 4
	}
	if !vectored {
		_, err := w.Write(buf[:p])
		return err
	}
	s.vec = append(net.Buffers(s.arr[:0]), buf[:tail], m.Data, buf[tail:p])
	_, err := s.vec.WriteTo(w)
	return err
}

// ReadMessage decodes one frame from r. When the frame carries a CRC32C
// trailer (flag bit 1), the trailer is verified before any field is
// parsed; a mismatch returns ErrChecksum. Every truncation — a stream
// that ends mid-frame as well as a frame whose declared length is too
// short for its fields — surfaces as io.ErrUnexpectedEOF (possibly
// wrapped); plain io.EOF means the stream ended cleanly between frames.
//
// The returned message and its Data come from the package's frame pools:
// a consumer that is done with the message may call Release to recycle
// them (the transport's own call sites do); a message that is never
// released is garbage-collected like any other value. Data aliases the
// frame buffer — copy it out before Release.
func ReadMessage(r io.Reader) (*Message, error) {
	// The length prefix is read through a pooled array: a stack [4]byte
	// would escape through the io.Reader interface and cost an allocation
	// per frame on both sides of the wire.
	lb := lenBufPool.Get().(*[4]byte)
	_, err := io.ReadFull(r, lb[:])
	n := binary.BigEndian.Uint32(lb[:])
	lenBufPool.Put(lb)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := getBody(int(n))
	buf := (*body)[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		putBody(body)
		if errors.Is(err, io.EOF) {
			// The body never arrived at all: still a truncated frame, not
			// a clean end of stream.
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	m := messagePool.Get().(*Message)
	*m = Message{body: body, envelope: true}
	p := 0
	fail := func(k int) (*Message, error) {
		err := fmt.Errorf("rpc: truncated frame (need %d at %d of %d): %w", k, p, len(buf), io.ErrUnexpectedEOF)
		m.Release()
		return nil, err
	}
	var flags byte
	if len(buf) >= 2 {
		flags = buf[1]
	}
	if flags&flagChecksum != 0 {
		if len(buf) < 4 {
			err := fmt.Errorf("rpc: truncated frame (no room for checksum in %d bytes): %w", len(buf), io.ErrUnexpectedEOF)
			m.Release()
			return nil, err
		}
		payload, want := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
		if crc32.Checksum(payload, castagnoli) != want {
			m.Release()
			return nil, ErrChecksum
		}
		buf = payload
	}
	if p+16 > len(buf) {
		return fail(16)
	}
	m.Op = Op(buf[p])
	p++
	m.Busy = buf[p]&flagBusy != 0
	m.Replayed = buf[p]&flagReplay != 0
	p++
	m.RetryAfter = time.Duration(binary.BigEndian.Uint32(buf[p:])) * time.Microsecond
	p += 4
	m.Trace = binary.BigEndian.Uint64(buf[p:])
	p += 8
	pathLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if p+pathLen+20 > len(buf) {
		return fail(pathLen + 20)
	}
	m.Path = string(buf[p : p+pathLen])
	p += pathLen
	m.Offset = int64(binary.BigEndian.Uint64(buf[p:]))
	p += 8
	m.Size = int64(binary.BigEndian.Uint64(buf[p:]))
	p += 8
	dataLen := int(binary.BigEndian.Uint32(buf[p:]))
	p += 4
	if p+dataLen+2 > len(buf) {
		return fail(dataLen + 2)
	}
	if dataLen > 0 {
		// No copy: the payload aliases the pooled frame buffer, released
		// by the consumer (the Release seam).
		m.Data = buf[p : p+dataLen]
	}
	p += dataLen
	errLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if p+errLen > len(buf) {
		return fail(errLen)
	}
	if errLen > 0 {
		m.Err = string(buf[p : p+errLen])
	}
	p += errLen
	if flags&flagDedup != 0 {
		if p+2 > len(buf) {
			return fail(2)
		}
		idLen := int(binary.BigEndian.Uint16(buf[p:]))
		p += 2
		if p+idLen+8 > len(buf) {
			return fail(idLen + 8)
		}
		m.ClientID = string(buf[p : p+idLen])
		p += idLen
		m.Seq = binary.BigEndian.Uint64(buf[p:])
		p += 8
	}
	if flags&flagPriority != 0 {
		if p+1 > len(buf) {
			return fail(1)
		}
		m.Priority = buf[p]
		p++
	}
	if flags&flagEpoch != 0 {
		if p+8 > len(buf) {
			return fail(8)
		}
		m.Epoch = binary.BigEndian.Uint64(buf[p:])
		p += 8
	}
	if m.Data == nil {
		// Dataless frames (metadata ops, write acks, busy sheds) have
		// already copied every field out of the buffer; recycle it now so
		// consumers that never release small messages cost nothing.
		m.body = nil
		putBody(body)
	}
	return m, nil
}

// retryAfterMicros converts a retry-after hint to its wire encoding:
// whole microseconds, saturating at the uint32 ceiling (~71 minutes —
// far beyond any sane hint) and clamping negatives to zero.
func retryAfterMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d.Microseconds()
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}
