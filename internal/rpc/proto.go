// Package rpc is the forwarding layer's wire transport, standing in for the
// Mercury HPC RPC framework GekkoFS uses. It implements a compact framed
// binary protocol over TCP with connection pooling on the client side and a
// handler-dispatch server. The forwarding semantics (which server a request
// goes to, how requests are scheduled) live in the fwd and ion packages;
// this package only moves bytes.
//
// Frame layout (all integers big-endian):
//
//	uint32  frame length (bytes after this field)
//	uint8   opcode
//	uint8   flags       (bit 0: busy — the server shed this request;
//	                     bit 1: a CRC32C trailer is present;
//	                     bit 2: a dedup identity trailer is present;
//	                     bit 3: replayed — the server answered from its
//	                            dedup window instead of re-executing)
//	uint32  retry-after (microseconds; busy responses only, else 0)
//	uint64  trace id   (0 = untraced; see internal/telemetry)
//	uint16  path length
//	bytes   path
//	int64   offset
//	int64   size       (read length, stat results, etc.)
//	uint32  data length
//	bytes   data       (write payload or read result)
//	uint16  error length
//	bytes   error      (responses only; empty means success)
//	-- optional, bit 2 --
//	uint16  client id length
//	bytes   client id  (exactly-once identity; see internal/ion dedup)
//	uint64  sequence   (per-client, starts at 1; 0 = unstamped)
//	-- optional, bit 1, always last --
//	uint32  CRC32C     (Castagnoli, over every body byte before it)
//
// Both trailers are flag-gated so a message that carries neither (and a
// writer with checksums off) encodes byte-identically to protocol
// version 1; version 2 readers accept both forms, which is the whole
// negotiation.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// ProtoVersion identifies the frame format: version 2 added the flag-gated
// CRC32C and dedup-identity trailers. Version 1 frames are exactly the
// version 2 frames with neither flag set, so readers need no version field
// on the wire — presence bits are the negotiation.
const ProtoVersion = 2

// Op identifies the remote operation.
type Op uint8

// Remote operations understood by I/O-node daemons.
const (
	OpPing Op = iota + 1
	OpCreate
	OpWrite
	OpRead
	OpStat
	OpRemove
	OpFsync
	OpShutdown
)

func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpRemove:
		return "remove"
	case OpFsync:
		return "fsync"
	case OpShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Message is both the request and response representation.
type Message struct {
	Op     Op
	Path   string
	Offset int64
	Size   int64
	Data   []byte
	Err    string
	// Trace carries the originating request's telemetry trace ID across
	// the wire so server-side layers can append hops to the same record.
	// Zero means untraced; servers echo it back in responses.
	Trace uint64
	// Busy marks a shed response: the server is alive but refused to take
	// the request on (queue above its high watermark, in-flight cap hit).
	// A busy response is NOT a transport failure — the exchange completed
	// — and NOT an application error: the request was never attempted.
	// Clients surface it as a BusyError so the forwarding layer can
	// throttle and retry instead of failing over or tripping breakers.
	Busy bool
	// RetryAfter is the server's hint for when to try again (busy
	// responses only). Encoded on the wire as whole microseconds.
	RetryAfter time.Duration
	// ClientID and Seq are the exactly-once identity of a forwarded
	// request: ClientID names the issuing forwarding client instance, Seq
	// is its per-client sequence number (starting at 1; 0 means
	// unstamped). A daemon with a dedup window uses the pair to recognise
	// a transport-retried request it already applied and replay the cached
	// response instead of re-executing it.
	ClientID string
	Seq      uint64
	// Replayed marks a response served from the daemon's dedup window:
	// the operation was applied by an earlier attempt and this response
	// repeats its outcome without re-executing.
	Replayed bool
}

// Flag bits for the frame's flags byte.
const (
	flagBusy     = 1 << 0
	flagChecksum = 1 << 1
	flagDedup    = 1 << 2
	flagReplay   = 1 << 3
)

// castagnoli is the CRC32C polynomial table used for frame checksums
// (the same polynomial iSCSI and ext4 use; hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxFrame bounds a single frame (a forwarded request carries at most one
// chunk, so this is generous).
const MaxFrame = 64 << 20

// Frame size limits for the variable-length fields.
const (
	maxPath = 1 << 16 // uint16 length prefix
	maxErr  = 1 << 16 // uint16 length prefix
	maxData = MaxFrame/2 - 64
)

var (
	// ErrFrameTooLarge indicates a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")
	// ErrClosed indicates use of a closed client or server.
	ErrClosed = errors.New("rpc: closed")
	// ErrChecksum indicates a frame whose CRC32C trailer does not match
	// its body: the bytes were altered in flight. It is a transport
	// failure — the connection that produced it must be discarded, since
	// framing can no longer be trusted.
	ErrChecksum = errors.New("rpc: frame checksum mismatch")
)

// validateMessage checks the frame-size limits before any byte touches the
// wire, so an unsendable message is a permanent local error — it must not
// discard a healthy connection, burn retries, or trip the circuit breaker.
func validateMessage(m *Message) error {
	if len(m.Path) >= maxPath {
		return fmt.Errorf("rpc: path too long (%d bytes)", len(m.Path))
	}
	if len(m.Err) >= maxErr {
		return fmt.Errorf("rpc: error string too long (%d bytes)", len(m.Err))
	}
	if len(m.ClientID) >= maxPath {
		return fmt.Errorf("rpc: client id too long (%d bytes)", len(m.ClientID))
	}
	if len(m.Data) > maxData {
		return fmt.Errorf("%w: %d-byte payload", ErrFrameTooLarge, len(m.Data))
	}
	return nil
}

// WriteMessage encodes m onto w as one frame, without a checksum trailer
// (the protocol-version-1 form; a dedup identity on m is still encoded).
func WriteMessage(w io.Writer, m *Message) error {
	return writeFrame(w, m, false)
}

// WriteMessageChecksum encodes m onto w as one frame with a CRC32C
// trailer. Readers verify the trailer whenever it is present, so a
// checksumming writer interoperates with any reader of this package.
func WriteMessageChecksum(w io.Writer, m *Message) error {
	return writeFrame(w, m, true)
}

func writeFrame(w io.Writer, m *Message, sum bool) error {
	if err := validateMessage(m); err != nil {
		return err
	}
	hasDedup := m.ClientID != "" || m.Seq != 0
	n := 1 + 1 + 4 + 8 + 2 + len(m.Path) + 8 + 8 + 4 + len(m.Data) + 2 + len(m.Err)
	if hasDedup {
		n += 2 + len(m.ClientID) + 8
	}
	if sum {
		n += 4
	}
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf[0:], uint32(n))
	p := 4
	buf[p] = byte(m.Op)
	p++
	var flags byte
	if m.Busy {
		flags |= flagBusy
	}
	if sum {
		flags |= flagChecksum
	}
	if hasDedup {
		flags |= flagDedup
	}
	if m.Replayed {
		flags |= flagReplay
	}
	buf[p] = flags
	p++
	binary.BigEndian.PutUint32(buf[p:], retryAfterMicros(m.RetryAfter))
	p += 4
	binary.BigEndian.PutUint64(buf[p:], m.Trace)
	p += 8
	binary.BigEndian.PutUint16(buf[p:], uint16(len(m.Path)))
	p += 2
	p += copy(buf[p:], m.Path)
	binary.BigEndian.PutUint64(buf[p:], uint64(m.Offset))
	p += 8
	binary.BigEndian.PutUint64(buf[p:], uint64(m.Size))
	p += 8
	binary.BigEndian.PutUint32(buf[p:], uint32(len(m.Data)))
	p += 4
	p += copy(buf[p:], m.Data)
	binary.BigEndian.PutUint16(buf[p:], uint16(len(m.Err)))
	p += 2
	p += copy(buf[p:], m.Err)
	if hasDedup {
		binary.BigEndian.PutUint16(buf[p:], uint16(len(m.ClientID)))
		p += 2
		p += copy(buf[p:], m.ClientID)
		binary.BigEndian.PutUint64(buf[p:], m.Seq)
		p += 8
	}
	if sum {
		binary.BigEndian.PutUint32(buf[p:], crc32.Checksum(buf[4:p], castagnoli))
	}
	_, err := w.Write(buf)
	return err
}

// ReadMessage decodes one frame from r. When the frame carries a CRC32C
// trailer (flag bit 1), the trailer is verified before any field is
// parsed; a mismatch returns ErrChecksum. Every truncation — a stream
// that ends mid-frame as well as a frame whose declared length is too
// short for its fields — surfaces as io.ErrUnexpectedEOF (possibly
// wrapped); plain io.EOF means the stream ended cleanly between frames.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			// The body never arrived at all: still a truncated frame, not
			// a clean end of stream.
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	m := &Message{}
	p := 0
	need := func(k int) error {
		if p+k > len(buf) {
			return fmt.Errorf("rpc: truncated frame (need %d at %d of %d): %w", k, p, len(buf), io.ErrUnexpectedEOF)
		}
		return nil
	}
	var flags byte
	if len(buf) >= 2 {
		flags = buf[1]
	}
	if flags&flagChecksum != 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("rpc: truncated frame (no room for checksum in %d bytes): %w", len(buf), io.ErrUnexpectedEOF)
		}
		body, want := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
		if crc32.Checksum(body, castagnoli) != want {
			return nil, ErrChecksum
		}
		buf = body
	}
	if err := need(16); err != nil {
		return nil, err
	}
	m.Op = Op(buf[p])
	p++
	m.Busy = buf[p]&flagBusy != 0
	m.Replayed = buf[p]&flagReplay != 0
	p++
	m.RetryAfter = time.Duration(binary.BigEndian.Uint32(buf[p:])) * time.Microsecond
	p += 4
	m.Trace = binary.BigEndian.Uint64(buf[p:])
	p += 8
	pathLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if err := need(pathLen + 20); err != nil {
		return nil, err
	}
	m.Path = string(buf[p : p+pathLen])
	p += pathLen
	m.Offset = int64(binary.BigEndian.Uint64(buf[p:]))
	p += 8
	m.Size = int64(binary.BigEndian.Uint64(buf[p:]))
	p += 8
	dataLen := int(binary.BigEndian.Uint32(buf[p:]))
	p += 4
	if err := need(dataLen + 2); err != nil {
		return nil, err
	}
	if dataLen > 0 {
		m.Data = make([]byte, dataLen)
		copy(m.Data, buf[p:p+dataLen])
	}
	p += dataLen
	errLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if err := need(errLen); err != nil {
		return nil, err
	}
	if errLen > 0 {
		m.Err = string(buf[p : p+errLen])
	}
	p += errLen
	if flags&flagDedup != 0 {
		if err := need(2); err != nil {
			return nil, err
		}
		idLen := int(binary.BigEndian.Uint16(buf[p:]))
		p += 2
		if err := need(idLen + 8); err != nil {
			return nil, err
		}
		m.ClientID = string(buf[p : p+idLen])
		p += idLen
		m.Seq = binary.BigEndian.Uint64(buf[p:])
	}
	return m, nil
}

// retryAfterMicros converts a retry-after hint to its wire encoding:
// whole microseconds, saturating at the uint32 ceiling (~71 minutes —
// far beyond any sane hint) and clamping negatives to zero.
func retryAfterMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d.Microseconds()
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}
