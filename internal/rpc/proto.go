// Package rpc is the forwarding layer's wire transport, standing in for the
// Mercury HPC RPC framework GekkoFS uses. It implements a compact framed
// binary protocol over TCP with connection pooling on the client side and a
// handler-dispatch server. The forwarding semantics (which server a request
// goes to, how requests are scheduled) live in the fwd and ion packages;
// this package only moves bytes.
//
// Frame layout (all integers big-endian):
//
//	uint32  frame length (bytes after this field)
//	uint8   opcode
//	uint8   flags       (bit 0: busy — the server shed this request)
//	uint32  retry-after (microseconds; busy responses only, else 0)
//	uint64  trace id   (0 = untraced; see internal/telemetry)
//	uint16  path length
//	bytes   path
//	int64   offset
//	int64   size       (read length, stat results, etc.)
//	uint32  data length
//	bytes   data       (write payload or read result)
//	uint16  error length
//	bytes   error      (responses only; empty means success)
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Op identifies the remote operation.
type Op uint8

// Remote operations understood by I/O-node daemons.
const (
	OpPing Op = iota + 1
	OpCreate
	OpWrite
	OpRead
	OpStat
	OpRemove
	OpFsync
	OpShutdown
)

func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpRemove:
		return "remove"
	case OpFsync:
		return "fsync"
	case OpShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Message is both the request and response representation.
type Message struct {
	Op     Op
	Path   string
	Offset int64
	Size   int64
	Data   []byte
	Err    string
	// Trace carries the originating request's telemetry trace ID across
	// the wire so server-side layers can append hops to the same record.
	// Zero means untraced; servers echo it back in responses.
	Trace uint64
	// Busy marks a shed response: the server is alive but refused to take
	// the request on (queue above its high watermark, in-flight cap hit).
	// A busy response is NOT a transport failure — the exchange completed
	// — and NOT an application error: the request was never attempted.
	// Clients surface it as a BusyError so the forwarding layer can
	// throttle and retry instead of failing over or tripping breakers.
	Busy bool
	// RetryAfter is the server's hint for when to try again (busy
	// responses only). Encoded on the wire as whole microseconds.
	RetryAfter time.Duration
}

// Flag bits for the frame's flags byte.
const flagBusy = 1 << 0

// MaxFrame bounds a single frame (a forwarded request carries at most one
// chunk, so this is generous).
const MaxFrame = 64 << 20

// Frame size limits for the variable-length fields.
const (
	maxPath = 1 << 16 // uint16 length prefix
	maxErr  = 1 << 16 // uint16 length prefix
	maxData = MaxFrame/2 - 64
)

var (
	// ErrFrameTooLarge indicates a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")
	// ErrClosed indicates use of a closed client or server.
	ErrClosed = errors.New("rpc: closed")
)

// validateMessage checks the frame-size limits before any byte touches the
// wire, so an unsendable message is a permanent local error — it must not
// discard a healthy connection, burn retries, or trip the circuit breaker.
func validateMessage(m *Message) error {
	if len(m.Path) >= maxPath {
		return fmt.Errorf("rpc: path too long (%d bytes)", len(m.Path))
	}
	if len(m.Err) >= maxErr {
		return fmt.Errorf("rpc: error string too long (%d bytes)", len(m.Err))
	}
	if len(m.Data) > maxData {
		return fmt.Errorf("%w: %d-byte payload", ErrFrameTooLarge, len(m.Data))
	}
	return nil
}

// WriteMessage encodes m onto w as one frame.
func WriteMessage(w io.Writer, m *Message) error {
	if err := validateMessage(m); err != nil {
		return err
	}
	n := 1 + 1 + 4 + 8 + 2 + len(m.Path) + 8 + 8 + 4 + len(m.Data) + 2 + len(m.Err)
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf[0:], uint32(n))
	p := 4
	buf[p] = byte(m.Op)
	p++
	var flags byte
	if m.Busy {
		flags |= flagBusy
	}
	buf[p] = flags
	p++
	binary.BigEndian.PutUint32(buf[p:], retryAfterMicros(m.RetryAfter))
	p += 4
	binary.BigEndian.PutUint64(buf[p:], m.Trace)
	p += 8
	binary.BigEndian.PutUint16(buf[p:], uint16(len(m.Path)))
	p += 2
	p += copy(buf[p:], m.Path)
	binary.BigEndian.PutUint64(buf[p:], uint64(m.Offset))
	p += 8
	binary.BigEndian.PutUint64(buf[p:], uint64(m.Size))
	p += 8
	binary.BigEndian.PutUint32(buf[p:], uint32(len(m.Data)))
	p += 4
	p += copy(buf[p:], m.Data)
	binary.BigEndian.PutUint16(buf[p:], uint16(len(m.Err)))
	p += 2
	copy(buf[p:], m.Err)
	_, err := w.Write(buf)
	return err
}

// ReadMessage decodes one frame from r.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	m := &Message{}
	p := 0
	need := func(k int) error {
		if p+k > len(buf) {
			return fmt.Errorf("rpc: truncated frame (need %d at %d of %d)", k, p, len(buf))
		}
		return nil
	}
	if err := need(16); err != nil {
		return nil, err
	}
	m.Op = Op(buf[p])
	p++
	m.Busy = buf[p]&flagBusy != 0
	p++
	m.RetryAfter = time.Duration(binary.BigEndian.Uint32(buf[p:])) * time.Microsecond
	p += 4
	m.Trace = binary.BigEndian.Uint64(buf[p:])
	p += 8
	pathLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if err := need(pathLen + 20); err != nil {
		return nil, err
	}
	m.Path = string(buf[p : p+pathLen])
	p += pathLen
	m.Offset = int64(binary.BigEndian.Uint64(buf[p:]))
	p += 8
	m.Size = int64(binary.BigEndian.Uint64(buf[p:]))
	p += 8
	dataLen := int(binary.BigEndian.Uint32(buf[p:]))
	p += 4
	if err := need(dataLen + 2); err != nil {
		return nil, err
	}
	if dataLen > 0 {
		m.Data = make([]byte, dataLen)
		copy(m.Data, buf[p:p+dataLen])
	}
	p += dataLen
	errLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if err := need(errLen); err != nil {
		return nil, err
	}
	if errLen > 0 {
		m.Err = string(buf[p : p+errLen])
	}
	return m, nil
}

// retryAfterMicros converts a retry-after hint to its wire encoding:
// whole microseconds, saturating at the uint32 ceiling (~71 minutes —
// far beyond any sane hint) and clamping negatives to zero.
func retryAfterMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d.Microseconds()
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}
