package rpc

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Op: OpPing},
		{Op: OpWrite, Path: "/data/file.bin", Offset: 1 << 40, Size: 0, Data: []byte("hello world"), Trace: 1<<63 + 7},
		{Op: OpRead, Path: "x", Offset: -1, Size: 4096},
		{Op: OpStat, Path: strings.Repeat("p", 1000), Size: 123456789},
		{Op: OpRemove, Path: "/gone", Err: "no such file"},
		{Op: OpWrite, Data: make([]byte, 1<<20)},
	}
	for i, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("msg %d: write: %v", i, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: read: %v", i, err)
		}
		if got.Op != m.Op || got.Path != m.Path || got.Offset != m.Offset ||
			got.Size != m.Size || got.Err != m.Err || got.Trace != m.Trace ||
			!bytes.Equal(got.Data, m.Data) {
			t.Fatalf("msg %d: round trip mismatch:\n  in  %+v\n  out %+v", i, m, got)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(op uint8, path string, offset, size int64, data []byte, errStr string, trace uint64) bool {
		if len(path) >= maxPath || len(errStr) >= maxErr || len(data) > 1<<16 {
			return true
		}
		m := &Message{Op: Op(op), Path: path, Offset: offset, Size: size, Data: data, Err: errStr, Trace: trace}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		// Compare the wire-visible fields (the decoded message additionally
		// carries internal frame-pool state, which is not message identity).
		return got.Op == m.Op && got.Path == m.Path && got.Offset == m.Offset &&
			got.Size == m.Size && got.Err == m.Err && got.Trace == m.Trace &&
			got.Busy == m.Busy && got.RetryAfter == m.RetryAfter &&
			got.ClientID == m.ClientID && got.Seq == m.Seq &&
			got.Replayed == m.Replayed && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMessageLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Path: strings.Repeat("x", maxPath)}); err == nil {
		t.Error("oversized path should fail")
	}
	if err := WriteMessage(&buf, &Message{Err: strings.Repeat("x", maxErr)}); err == nil {
		t.Error("oversized error should fail")
	}
}

func TestReadMessageTruncated(t *testing.T) {
	m := &Message{Op: OpWrite, Path: "/f", Data: []byte("abcdef")}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 3 {
		if _, err := ReadMessage(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
}

func TestReadMessageOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestClientServerEcho(t *testing.T) {
	srv := NewServer(func(req *Message) *Message {
		resp := *req
		resp.Err = ""
		if req.Op == OpPing {
			resp.Data = []byte("pong")
		}
		return &resp
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := Dial(addr, 2)
	defer cli.Close()

	resp, err := cli.Call(&Message{Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "pong" {
		t.Fatalf("unexpected response %+v", resp)
	}
}

func TestClientServerError(t *testing.T) {
	srv := NewServer(func(req *Message) *Message {
		return &Message{Op: req.Op, Err: "boom"}
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpWrite}); err == nil || err.Error() != "boom" {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv := NewServer(func(req *Message) *Message {
		return &Message{Op: req.Op, Path: req.Path, Data: req.Data}
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(addr, 4)
	defer cli.Close()

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := fmt.Sprintf("/w%d/i%d", w, i)
				resp, err := cli.Call(&Message{Op: OpWrite, Path: path, Data: []byte(path)})
				if err != nil {
					errs <- err
					return
				}
				if resp.Path != path || string(resp.Data) != path {
					errs <- fmt.Errorf("response mismatch: %q vs %q", resp.Path, path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientClosed(t *testing.T) {
	cli := Dial("127.0.0.1:1", 1)
	cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(func(req *Message) *Message { return req })
	if _, err := srv.Listen(""); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCallAfterServerClose(t *testing.T) {
	srv := NewServer(func(req *Message) *Message { return req })
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(&Message{Op: OpPing, Path: "warm"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Call(&Message{Op: OpPing}); err == nil {
		t.Fatal("call after server close should fail")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpPing: "ping", OpCreate: "create", OpWrite: "write", OpRead: "read",
		OpStat: "stat", OpRemove: "remove", OpFsync: "fsync", OpShutdown: "shutdown",
		Op(99): "op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}
