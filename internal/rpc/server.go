package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Handler processes one request and returns the response. Handlers must be
// safe for concurrent use; the server runs one goroutine per connection.
//
// Ownership: the request (including its Data, which aliases a pooled
// frame buffer) is valid only until the handler returns — a handler that
// needs request bytes longer must copy them. The server releases the
// request, and the response, back to the frame pools once the response
// frame has been written; returning the request itself as the response is
// allowed.
type Handler func(*Message) *Message

// Server accepts framed-RPC connections and dispatches requests to a
// Handler. The zero value is unusable; construct with NewServer.
type Server struct {
	handler  Handler
	limits   ServerLimits
	checksum bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	inflight atomic.Int64

	// Telemetry handles are nil on an uninstrumented server; every method
	// on them is then a no-op (see internal/telemetry).
	tel struct {
		shed, connLimitCloses *telemetry.Counter
		checksumErrors        *telemetry.Counter
		connsGauge, inflGauge *telemetry.Gauge
	}
}

// NewServer returns a server that dispatches every request to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// WithLimits installs admission limits (see ServerLimits). Call before
// Listen. Returns s for chaining.
func (s *Server) WithLimits(l ServerLimits) *Server {
	s.limits = l.withDefaults()
	return s
}

// WithChecksum makes the server append a CRC32C trailer to every response
// it sends. Inbound frames are verified whenever they carry a trailer,
// regardless of this setting. Call before Listen. Returns s for chaining.
func (s *Server) WithChecksum(on bool) *Server {
	s.checksum = on
	return s
}

// Instrument attaches overload metrics to the server: requests shed at the
// in-flight cap, connections closed at the connection cap, and live
// connection/in-flight gauges. label is an optional Prometheus label set
// (e.g. `{node="ion00"}`) so per-daemon servers stay distinguishable in
// one registry. Call before Listen; reg may be nil. Returns s for
// chaining.
func (s *Server) Instrument(reg *telemetry.Registry, label string) *Server {
	s.tel.shed = reg.Counter("rpc_server_shed_total" + label)
	s.tel.connLimitCloses = reg.Counter("rpc_server_conn_limit_closes_total" + label)
	s.tel.checksumErrors = reg.Counter("rpc_checksum_errors_total" + label)
	s.tel.connsGauge = reg.Gauge("rpc_server_conns" + label)
	s.tel.inflGauge = reg.Gauge("rpc_server_inflight" + label)
	return s
}

// Listen binds the server to addr ("host:port", empty port for ephemeral)
// and starts accepting in a background goroutine. It returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.ListenOn(ln)
}

// ListenOn starts accepting on an already-bound listener. It exists so
// callers can interpose on the transport (e.g. faultnet wraps the daemon's
// listener with a network fault injector in chaos tests). The server takes
// ownership of ln and closes it on Close.
func (s *Server) ListenOn(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.limits.MaxConns > 0 && len(s.conns) >= s.limits.MaxConns {
			// Connection cap: a hard resource guard, closed before any
			// bytes flow. Unlike a shed (which needs an accepted request
			// to answer), this is indistinguishable from a transport
			// failure to the peer — so it defaults off and request-level
			// shedding (MaxInflight, queue caps) is the polite first line.
			s.mu.Unlock()
			s.tel.connLimitCloses.Inc()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.tel.connsGauge.Set(int64(len(s.conns)))
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.tel.connsGauge.Set(int64(len(s.conns)))
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := ReadMessage(conn)
		if err != nil {
			// A checksum mismatch means the frame reached us but its bytes
			// are untrustworthy — including the opcode and offset, so no
			// response can be built. Count it and discard the connection:
			// the client sees a broken exchange (transport failure) and its
			// retry/breaker accounting applies.
			if errors.Is(err, ErrChecksum) {
				s.tel.checksumErrors.Inc()
			}
			return // EOF or broken connection
		}
		resp := s.dispatch(req)
		if resp == nil {
			// Echo only identity fields; never stale flags or payload from
			// the request (see the response-hygiene audit in ion).
			resp = &Message{Op: req.Op, Path: req.Path, Trace: req.Trace}
		}
		err = writeFrame(conn, resp, s.checksum)
		// The exchange is over: recycle both frames (the handler contract
		// forbids it retaining either past this point). Handlers may return
		// the request itself or a shallow copy of it — either way the
		// shared frame buffer must go back to the pool exactly once.
		if resp != req {
			if resp.SharesBuffer(req) {
				resp.DisownBuffer()
			}
			resp.Release()
		}
		req.Release()
		if err != nil {
			return
		}
	}
}

// dispatch applies the in-flight cap around one handler invocation: a
// request arriving above MaxInflight is shed with a busy response instead
// of entering the handler, so a flood of connections cannot queue
// unbounded work behind the daemon.
func (s *Server) dispatch(req *Message) *Message {
	if s.limits.MaxInflight <= 0 {
		return s.handler(req)
	}
	if n := s.inflight.Add(1); n > int64(s.limits.MaxInflight) {
		s.inflight.Add(-1)
		s.tel.shed.Inc()
		return busyResponse(req, s.limits.RetryAfter)
	}
	s.tel.inflGauge.Set(s.inflight.Load())
	defer func() {
		s.tel.inflGauge.Set(s.inflight.Add(-1))
	}()
	return s.handler(req)
}

// Close stops accepting, closes every open connection, and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a pooled connection set to one server address. Requests are
// serialized per connection; up to PoolSize requests proceed in parallel.
type Client struct {
	addr string
	opts Options
	brk  *breaker // nil when the breaker is disabled

	mu     sync.Mutex
	idle   []net.Conn
	total  int
	max    int
	closed bool
	cond   *sync.Cond

	// Telemetry handles are nil on an uninstrumented client; every method
	// on them is then a no-op (see internal/telemetry).
	tel struct {
		dials, dialErrors, calls, callErrors *telemetry.Counter
		staleRetries, staleEvictions         *telemetry.Counter
		deadlineExpired, retries             *telemetry.Counter
		breakerOpens, breakerProbes          *telemetry.Counter
		breakerCloses, breakerRejects        *telemetry.Counter
		busyResponses, checksumErrors        *telemetry.Counter
		latency                              *telemetry.Histogram
	}
	tracer *telemetry.Tracer
}

// DefaultPoolSize is the per-target connection pool size.
const DefaultPoolSize = 4

// Dial returns a client for addr with the given pool size (≤0 selects
// DefaultPoolSize). Connections are established lazily.
func Dial(addr string, poolSize int) *Client {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	c := &Client{addr: addr, max: poolSize}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

// WithOptions installs failure-tolerance options (deadlines, retries,
// breaker — see Options). Call before the first Call. Returns c for
// chaining.
func (c *Client) WithOptions(o Options) *Client {
	c.opts = o.withDefaults()
	if c.opts.BreakerThreshold > 0 {
		c.brk = newBreaker(c.opts.BreakerThreshold, c.opts.BreakerCooldown)
	} else {
		c.brk = nil
	}
	return c
}

// BreakerState reports the circuit breaker's current state (BreakerClosed
// when the breaker is disabled).
func (c *Client) BreakerState() BreakerState {
	if c.brk == nil {
		return BreakerClosed
	}
	return c.brk.current()
}

// Instrument attaches a metrics registry and tracer to the client. Call
// it before the first Call; either argument may be nil. It returns c for
// chaining. The counters record dial activity and the stale-connection
// retry path (retries taken, idle siblings evicted), so connection-churn
// behaviour is observable and testable; latency covers every Call.
func (c *Client) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer) *Client {
	c.tel.dials = reg.Counter("rpc_dials_total")
	c.tel.dialErrors = reg.Counter("rpc_dial_errors_total")
	c.tel.calls = reg.Counter("rpc_calls_total")
	c.tel.callErrors = reg.Counter("rpc_call_errors_total")
	c.tel.staleRetries = reg.Counter("rpc_stale_retries_total")
	c.tel.staleEvictions = reg.Counter("rpc_stale_evictions_total")
	c.tel.deadlineExpired = reg.Counter("rpc_deadline_expired_total")
	c.tel.retries = reg.Counter("rpc_retries_total")
	c.tel.breakerOpens = reg.Counter("rpc_breaker_open_total")
	c.tel.breakerProbes = reg.Counter("rpc_breaker_half_open_probes_total")
	c.tel.breakerCloses = reg.Counter("rpc_breaker_close_total")
	c.tel.breakerRejects = reg.Counter("rpc_breaker_rejected_total")
	c.tel.busyResponses = reg.Counter("rpc_busy_responses_total")
	c.tel.checksumErrors = reg.Counter("rpc_checksum_errors_total")
	c.tel.latency = reg.Histogram("rpc_call_latency_seconds", telemetry.LatencyBuckets())
	c.tracer = tracer
	return c
}

// getConn returns a connection and whether it came from the idle pool (a
// pooled connection may have been closed by the server while idle; a
// freshly dialed one cannot have been).
func (c *Client) getConn() (conn net.Conn, pooled bool, err error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, false, ErrClosed
		}
		if n := len(c.idle); n > 0 {
			conn := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			return conn, true, nil
		}
		if c.total < c.max {
			c.total++
			c.mu.Unlock()
			c.tel.dials.Inc()
			conn, err := c.netDial()
			if err != nil {
				c.tel.dialErrors.Inc()
				c.mu.Lock()
				c.total--
				c.cond.Signal()
				c.mu.Unlock()
				return nil, false, err
			}
			return conn, false, nil
		}
		c.cond.Wait()
	}
}

// dialFresh always establishes a new connection, evicting idle pooled
// connections if the pool is at capacity: it is only called after a pooled
// connection turned out stale (e.g. a server restart), which makes its
// idle siblings suspect too.
func (c *Client) dialFresh() (net.Conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.total < c.max {
			c.total++
			break
		}
		if n := len(c.idle); n > 0 {
			stale := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.total--
			stale.Close()
			c.tel.staleEvictions.Inc()
			continue
		}
		c.cond.Wait()
	}
	c.mu.Unlock()
	c.tel.dials.Inc()
	conn, err := c.netDial()
	if err != nil {
		c.tel.dialErrors.Inc()
		c.mu.Lock()
		c.total--
		c.cond.Signal()
		c.mu.Unlock()
		return nil, err
	}
	return conn, nil
}

func (c *Client) putConn(conn net.Conn, broken bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if broken || c.closed {
		conn.Close()
		c.total--
	} else {
		c.idle = append(c.idle, conn)
	}
	c.cond.Signal()
}

// netDial establishes one TCP connection, bounded by CallTimeout when set
// so a black-holed address cannot stall a call past its deadline.
func (c *Client) netDial() (net.Conn, error) {
	if c.opts.CallTimeout > 0 {
		return net.DialTimeout("tcp", c.addr, c.opts.CallTimeout)
	}
	return net.Dial("tcp", c.addr)
}

// noteTimeout counts deadline expiries so hung-server detection is
// observable separately from other transport failures.
func (c *Client) noteTimeout(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.tel.deadlineExpired.Inc()
	}
}

// roundTrip performs one request/response exchange on conn and returns the
// connection to the pool (or discards it on failure).
//
// Pool-hygiene invariants (see the regression tests in failure_test.go):
// a conn that failed partway through an exchange — bytes possibly on the
// wire, a response possibly half-read — is always discarded, never pooled;
// and a conn that completed an exchange under a deadline has the deadline
// cleared before pooling, so it cannot fail spuriously on reuse.
func (c *Client) roundTrip(conn net.Conn, req *Message) (*Message, error) {
	if c.opts.CallTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.opts.CallTimeout)); err != nil {
			c.putConn(conn, true)
			return nil, err
		}
	}
	if err := writeFrame(conn, req, c.opts.WireChecksum); err != nil {
		c.noteTimeout(err)
		c.putConn(conn, true)
		return nil, err
	}
	resp, err := ReadMessage(conn)
	if err != nil {
		// A corrupted response is a transport failure like any other: the
		// conn is discarded here and the retry/breaker loop takes over.
		if errors.Is(err, ErrChecksum) {
			c.tel.checksumErrors.Inc()
		}
		c.noteTimeout(err)
		c.putConn(conn, true)
		return nil, err
	}
	if c.opts.CallTimeout > 0 {
		if err := conn.SetDeadline(time.Time{}); err != nil {
			// The exchange completed; only the conn's future is suspect.
			c.putConn(conn, true)
			return resp, nil
		}
	}
	c.putConn(conn, false)
	return resp, nil
}

// Call sends req and waits for the response. Safe for concurrent use.
//
// Transport-level failures (dial errors, broken or timed-out exchanges)
// are retried up to Options.MaxRetries times with exponential backoff and
// jitter, feed the circuit breaker, and are wrapped in ErrUnavailable.
// Application errors (the server responded with resp.Err) surface
// immediately and count as successes for the breaker.
func (c *Client) Call(req *Message) (*Message, error) {
	start := time.Now()
	resp, err := c.call(req)
	c.tel.calls.Inc()
	c.tel.latency.ObserveDuration(time.Since(start))
	if err != nil {
		c.tel.callErrors.Inc()
	}
	if c.tracer != nil {
		bytes := int64(len(req.Data))
		if resp != nil {
			bytes += int64(len(resp.Data))
		}
		c.tracer.AddHop(req.Trace, "rpc", start, bytes, c.addr)
	}
	return resp, err
}

// errClass partitions attempt outcomes for the retry loop and the breaker.
type errClass int

const (
	classOK        errClass = iota
	classApp                // server responded with an application error
	classBusy               // server shed the request: alive, not retried here
	classLocal              // client-side condition (closed, bad message): permanent
	classTransport          // dial/exchange failure: retryable, trips the breaker
)

func (c *Client) call(req *Message) (*Message, error) {
	attempts := 1 + c.opts.MaxRetries
	var lastErr error
	for i := 0; i < attempts; i++ {
		if c.brk != nil {
			ok, probe := c.brk.allow(time.Now())
			if !ok {
				c.tel.breakerRejects.Inc()
				return nil, fmt.Errorf("%w: %w: %s", ErrUnavailable, ErrCircuitOpen, c.addr)
			}
			if probe {
				c.tel.breakerProbes.Inc()
			}
		}
		resp, err, class := c.attempt(req)
		switch class {
		case classOK, classApp:
			if c.brk != nil && c.brk.onSuccess() {
				c.tel.breakerCloses.Inc()
			}
			return resp, err
		case classBusy:
			// A shed proves the server alive: a breaker success, never a
			// transport retry. The caller (the fwd throttle) decides when
			// — and whether — to replay, honoring the retry-after hint.
			if c.brk != nil && c.brk.onSuccess() {
				c.tel.breakerCloses.Inc()
			}
			c.tel.busyResponses.Inc()
			return resp, err
		case classLocal:
			return resp, err
		}
		// classTransport: feed the breaker, maybe retry.
		if c.brk != nil && c.brk.onFailure(time.Now()) {
			c.tel.breakerOpens.Inc()
		}
		lastErr = err
		if i+1 < attempts {
			c.tel.retries.Inc()
			time.Sleep(backoffDelay(c.opts, i))
		}
	}
	return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, c.addr, lastErr)
}

// attempt performs one logical call: take a connection, exchange, and —
// preserving the original stale-conn semantics — retry exactly once on a
// freshly dialed connection when a pooled conn turns out stale.
func (c *Client) attempt(req *Message) (*Message, error, errClass) {
	if err := validateMessage(req); err != nil {
		// Nothing touched the wire: the request itself is unsendable.
		return nil, err, classLocal
	}
	conn, pooled, err := c.getConn()
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, err, classLocal
		}
		return nil, err, classTransport
	}
	resp, rtErr := c.roundTrip(conn, req)
	if rtErr != nil && pooled {
		c.tel.staleRetries.Inc()
		fresh, dialErr := c.dialFresh()
		if dialErr != nil {
			if errors.Is(dialErr, ErrClosed) {
				// The client was closed under this in-flight call; keep
				// the ErrClosed identity (not the raw transport error) so
				// callers can recognise released clients via errors.Is.
				return nil, fmt.Errorf("%w (in-flight call failed: %v)", ErrClosed, rtErr), classLocal
			}
			return nil, rtErr, classTransport
		}
		resp, rtErr = c.roundTrip(fresh, req)
	}
	if rtErr != nil {
		return nil, rtErr, classTransport
	}
	if resp.Busy {
		return resp, &BusyError{Addr: c.addr, RetryAfter: resp.RetryAfter}, classBusy
	}
	if resp.Err != "" {
		if IsStaleEpochErr(resp.Err) {
			// A fenced write completed the exchange — a breaker success,
			// never transport-retried. Surface the typed error (with the
			// node's fence floor from the response's epoch trailer) so the
			// forwarding layer can remap and retry under a fresh mapping.
			return resp, &StaleEpochError{Addr: c.addr, Epoch: req.Epoch, Fence: resp.Epoch}, classApp
		}
		return resp, errors.New(resp.Err), classApp
	}
	return resp, nil, classOK
}

// Close releases all pooled connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	c.cond.Broadcast()
	return nil
}
