package rpc

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Handler processes one request and returns the response. Handlers must be
// safe for concurrent use; the server runs one goroutine per connection.
type Handler func(*Message) *Message

// Server accepts framed-RPC connections and dispatches requests to a
// Handler. The zero value is unusable; construct with NewServer.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server that dispatches every request to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen binds the server to addr ("host:port", empty port for ephemeral)
// and starts accepting in a background goroutine. It returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := ReadMessage(conn)
		if err != nil {
			return // EOF or broken connection
		}
		resp := s.handler(req)
		if resp == nil {
			resp = &Message{Op: req.Op}
		}
		if err := WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes every open connection, and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a pooled connection set to one server address. Requests are
// serialized per connection; up to PoolSize requests proceed in parallel.
type Client struct {
	addr string

	mu     sync.Mutex
	idle   []net.Conn
	total  int
	max    int
	closed bool
	cond   *sync.Cond

	// Telemetry handles are nil on an uninstrumented client; every method
	// on them is then a no-op (see internal/telemetry).
	tel struct {
		dials, dialErrors, calls, callErrors *telemetry.Counter
		staleRetries, staleEvictions         *telemetry.Counter
		latency                              *telemetry.Histogram
	}
	tracer *telemetry.Tracer
}

// DefaultPoolSize is the per-target connection pool size.
const DefaultPoolSize = 4

// Dial returns a client for addr with the given pool size (≤0 selects
// DefaultPoolSize). Connections are established lazily.
func Dial(addr string, poolSize int) *Client {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	c := &Client{addr: addr, max: poolSize}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

// Instrument attaches a metrics registry and tracer to the client. Call
// it before the first Call; either argument may be nil. It returns c for
// chaining. The counters record dial activity and the stale-connection
// retry path (retries taken, idle siblings evicted), so connection-churn
// behaviour is observable and testable; latency covers every Call.
func (c *Client) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer) *Client {
	c.tel.dials = reg.Counter("rpc_dials_total")
	c.tel.dialErrors = reg.Counter("rpc_dial_errors_total")
	c.tel.calls = reg.Counter("rpc_calls_total")
	c.tel.callErrors = reg.Counter("rpc_call_errors_total")
	c.tel.staleRetries = reg.Counter("rpc_stale_retries_total")
	c.tel.staleEvictions = reg.Counter("rpc_stale_evictions_total")
	c.tel.latency = reg.Histogram("rpc_call_latency_seconds", telemetry.LatencyBuckets())
	c.tracer = tracer
	return c
}

// getConn returns a connection and whether it came from the idle pool (a
// pooled connection may have been closed by the server while idle; a
// freshly dialed one cannot have been).
func (c *Client) getConn() (conn net.Conn, pooled bool, err error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, false, ErrClosed
		}
		if n := len(c.idle); n > 0 {
			conn := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			return conn, true, nil
		}
		if c.total < c.max {
			c.total++
			c.mu.Unlock()
			c.tel.dials.Inc()
			conn, err := net.Dial("tcp", c.addr)
			if err != nil {
				c.tel.dialErrors.Inc()
				c.mu.Lock()
				c.total--
				c.cond.Signal()
				c.mu.Unlock()
				return nil, false, err
			}
			return conn, false, nil
		}
		c.cond.Wait()
	}
}

// dialFresh always establishes a new connection, evicting idle pooled
// connections if the pool is at capacity: it is only called after a pooled
// connection turned out stale (e.g. a server restart), which makes its
// idle siblings suspect too.
func (c *Client) dialFresh() (net.Conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.total < c.max {
			c.total++
			break
		}
		if n := len(c.idle); n > 0 {
			stale := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.total--
			stale.Close()
			c.tel.staleEvictions.Inc()
			continue
		}
		c.cond.Wait()
	}
	c.mu.Unlock()
	c.tel.dials.Inc()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		c.tel.dialErrors.Inc()
		c.mu.Lock()
		c.total--
		c.cond.Signal()
		c.mu.Unlock()
		return nil, err
	}
	return conn, nil
}

func (c *Client) putConn(conn net.Conn, broken bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if broken || c.closed {
		conn.Close()
		c.total--
	} else {
		c.idle = append(c.idle, conn)
	}
	c.cond.Signal()
}

// roundTrip performs one request/response exchange on conn and returns the
// connection to the pool (or discards it on failure).
func (c *Client) roundTrip(conn net.Conn, req *Message) (*Message, error) {
	if err := WriteMessage(conn, req); err != nil {
		c.putConn(conn, true)
		return nil, err
	}
	resp, err := ReadMessage(conn)
	if err != nil {
		c.putConn(conn, true)
		return nil, err
	}
	c.putConn(conn, false)
	return resp, nil
}

// Call sends req and waits for the response. Safe for concurrent use.
//
// A connection taken from the idle pool may have been closed by the server
// while it sat idle (restart, idle timeout); its first use then fails even
// though the server is reachable. When that happens the request is retried
// exactly once on a freshly dialed connection — a fresh dial either proves
// the server is really down or completes the call.
func (c *Client) Call(req *Message) (*Message, error) {
	start := time.Now()
	resp, err := c.call(req)
	c.tel.calls.Inc()
	c.tel.latency.ObserveDuration(time.Since(start))
	if err != nil {
		c.tel.callErrors.Inc()
	}
	if c.tracer != nil {
		bytes := int64(len(req.Data))
		if resp != nil {
			bytes += int64(len(resp.Data))
		}
		c.tracer.AddHop(req.Trace, "rpc", start, bytes, c.addr)
	}
	return resp, err
}

func (c *Client) call(req *Message) (*Message, error) {
	conn, pooled, err := c.getConn()
	if err != nil {
		return nil, err
	}
	resp, rtErr := c.roundTrip(conn, req)
	if rtErr != nil && pooled {
		c.tel.staleRetries.Inc()
		fresh, dialErr := c.dialFresh()
		if dialErr != nil {
			return nil, rtErr
		}
		resp, rtErr = c.roundTrip(fresh, req)
	}
	if rtErr != nil {
		return nil, rtErr
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Close releases all pooled connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	c.cond.Broadcast()
	return nil
}
