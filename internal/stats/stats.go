// Package stats provides the small set of order statistics and distribution
// summaries used by the experiment harness: minimum, median, maximum,
// arbitrary percentiles, and mean. The paper reports min/median/max bands
// (Fig. 3) and medians over 10,000 sampled application sets (Fig. 2).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Summary captures the order statistics the paper reports.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Median float64
	Mean   float64
	P25    float64
	P75    float64
	Stddev float64
}

// Summarize computes a Summary over xs. It does not modify xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	n := float64(len(s))
	mean := sum / n
	// Two-pass variance: summing squared deviations from the mean avoids
	// the catastrophic cancellation of the sumsq/n − mean² form, which
	// loses all precision when the spread is tiny relative to the
	// magnitude (e.g. bandwidths in B/s clustered around 10⁹).
	var m2 float64
	for _, v := range s {
		d := v - mean
		m2 += d * d
	}
	variance := m2 / n
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: quantileSorted(s, 0.5),
		Mean:   mean,
		P25:    quantileSorted(s, 0.25),
		P75:    quantileSorted(s, 0.75),
		Stddev: math.Sqrt(variance),
	}, nil
}

// Median returns the sample median, NaN for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the sample minimum, NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the sample maximum, NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks (the same convention as numpy's default). It does
// not modify xs. NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram counts xs into k equal-width bins spanning [min, max].
// Returns bin edges (k+1) and counts (k). Values equal to max land in the
// last bin. Returns nil slices for empty input or k < 1.
func Histogram(xs []float64, k int) (edges []float64, counts []int) {
	if len(xs) == 0 || k < 1 {
		return nil, nil
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, k+1)
	width := (hi - lo) / float64(k)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, k)
	for _, v := range xs {
		idx := int((v - lo) / width)
		if idx >= k {
			idx = k - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return edges, counts
}

// Ratios returns the element-wise ratio a[i]/b[i]. Pairs with b[i] == 0 are
// skipped. Used for the MCKP-over-STATIC improvement distribution (Fig. 3).
func Ratios(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if b[i] == 0 {
			continue
		}
		out = append(out, a[i]/b[i])
	}
	return out
}
