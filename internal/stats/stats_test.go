package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almostEq(s.Median, 3) || !almostEq(s.Mean, 3) {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEq(s.P25, 2) || !almostEq(s.P75, 4) {
		t.Fatalf("quartiles wrong: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almostEq(got, 2.5) {
		t.Fatalf("even median: got %v", got)
	}
	if got := Median([]float64{7}); !almostEq(got, 7) {
		t.Fatalf("single median: got %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30}
	if got := Quantile(xs, 0); !almostEq(got, 10) {
		t.Fatalf("q0: %v", got)
	}
	if got := Quantile(xs, 1); !almostEq(got, 30) {
		t.Fatalf("q1: %v", got)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Fatal("out-of-range q should be NaN")
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{-2, 9, 3}
	if Min(xs) != -2 || Max(xs) != 9 || !almostEq(Mean(xs), 10.0/3) {
		t.Fatalf("min/max/mean wrong: %v %v %v", Min(xs), Max(xs), Mean(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Mean(nil)) {
		t.Fatal("empty should give NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seedLen uint8) bool {
		n := int(seedLen)%50 + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	edges, counts := Histogram(xs, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("shape: %d edges %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram loses mass: %d != %d", total, len(xs))
	}
	// max value must land in the last bin
	if counts[4] == 0 {
		t.Fatal("last bin empty; max value misplaced")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	edges, counts := Histogram(nil, 3)
	if edges != nil || counts != nil {
		t.Fatal("empty input should give nil")
	}
	_, counts = Histogram([]float64{5, 5, 5}, 2)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("constant sample histogram loses mass: %d", total)
	}
}

func TestRatios(t *testing.T) {
	a := []float64{2, 4, 6}
	b := []float64{1, 0, 3}
	got := Ratios(a, b)
	want := []float64{2, 2}
	if len(got) != len(want) {
		t.Fatalf("len: %v", got)
	}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Fatalf("ratios: got %v want %v", got, want)
		}
	}
}

// TestSummarizeStddevLargeMagnitude: the naive sumsq/n − mean² variance
// catastrophically cancels when the spread is tiny relative to the
// magnitude (bandwidths in B/s sit near 10⁹ with sub-B/s spread); the
// two-pass form must stay exact.
func TestSummarizeStddevLargeMagnitude(t *testing.T) {
	base := 1e9 // 1 GB/s expressed in B/s
	xs := []float64{base, base + 1, base + 2}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2.0 / 3.0) // population stddev of {0,1,2}
	if math.Abs(s.Stddev-want) > 1e-6 {
		t.Fatalf("stddev at magnitude 1e9: got %v, want %v", s.Stddev, want)
	}

	// Shift invariance: adding a constant must not change the spread.
	shifted := make([]float64, len(xs))
	for i, v := range xs {
		shifted[i] = v - base
	}
	s2, err := Summarize(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Stddev-s2.Stddev) > 1e-6 {
		t.Fatalf("stddev not shift-invariant: %v vs %v", s.Stddev, s2.Stddev)
	}
}

// TestSummarizeStddevConstant: a constant sample has zero spread, and the
// result must not go NaN via a negative variance.
func TestSummarizeStddevConstant(t *testing.T) {
	s, err := Summarize([]float64{7.25e11, 7.25e11, 7.25e11, 7.25e11})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stddev != 0 {
		t.Fatalf("constant sample stddev: %v", s.Stddev)
	}
}

func TestSummaryAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.Min != sorted[0] || s.Max != sorted[1000] || !almostEq(s.Median, sorted[500]) {
		t.Fatalf("order stats mismatch: %+v", s)
	}
}
