package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

// TestSeriesCapCoalescesOverflow: past the per-family cap, new label sets
// collapse into the family's overflow series so the registry stays
// bounded but no increment is lost.
func TestSeriesCapCoalescesOverflow(t *testing.T) {
	reg := New()
	reg.SetMaxSeriesPerBase(4)
	for i := 0; i < 10; i++ {
		reg.Counter(fmt.Sprintf(`ops_total{app="a%d"}`, i)).Inc()
	}
	snap := reg.Snapshot()
	var series int
	var total int64
	for name, v := range snap.Counters {
		if baseName(name) == "ops_total" {
			series++
			total += v
		}
	}
	if series != 5 { // 4 admitted label sets + the overflow series
		t.Fatalf("ops_total family holds %d series, want 5: %v", series, snap.Counters)
	}
	if got := snap.Counters[`ops_total{overflow="true"}`]; got != 6 {
		t.Fatalf("overflow series = %d, want the 6 coalesced increments", got)
	}
	if total != 10 {
		t.Fatalf("family total = %d, want all 10 increments preserved", total)
	}
}

// TestSeriesCapSharedAcrossKinds: the cap counts a family's label sets
// across counters, gauges, and histograms together — splitting a family
// over kinds is not a way around the bound.
func TestSeriesCapSharedAcrossKinds(t *testing.T) {
	reg := New()
	reg.SetMaxSeriesPerBase(2)
	reg.Counter(`q_depth{ion="a"}`)
	reg.Gauge(`q_depth{ion="b"}`)
	h := reg.Histogram(`q_depth{ion="c"}`, []float64{1})
	h.Observe(0.5)
	snap := reg.Snapshot()
	if _, ok := snap.Histograms[`q_depth{overflow="true"}`]; !ok {
		t.Fatalf("third kind should have coalesced: %v", snap.Histograms)
	}
}

// TestSeriesCapNeverTouchesUnlabeled: unlabeled series are code-driven,
// not input-driven, and must never be coalesced or counted.
func TestSeriesCapNeverTouchesUnlabeled(t *testing.T) {
	reg := New()
	reg.SetMaxSeriesPerBase(1)
	reg.Counter(`ops_total{app="a"}`).Inc()
	reg.Counter("ops_total").Inc() // unlabeled, same family name
	reg.Counter("other_total").Inc()
	snap := reg.Snapshot()
	if snap.Counters["ops_total"] != 1 || snap.Counters["other_total"] != 1 {
		t.Fatalf("unlabeled series affected by the cap: %v", snap.Counters)
	}
	for name := range snap.Counters {
		if strings.Contains(name, "overflow") {
			t.Fatalf("no overflow expected at exactly the cap: %v", snap.Counters)
		}
	}
}

// TestSeriesCapStableHandles: the overflow series is one shared handle —
// two coalesced callers increment the same counter.
func TestSeriesCapStableHandles(t *testing.T) {
	reg := New()
	reg.SetMaxSeriesPerBase(1)
	reg.Counter(`x_total{a="1"}`)
	c1 := reg.Counter(`x_total{a="2"}`)
	c2 := reg.Counter(`x_total{a="3"}`)
	if c1 != c2 {
		t.Fatal("coalesced series should share one counter")
	}
	// Existing series keep their identity even once the family is full.
	if reg.Counter(`x_total{a="1"}`) == c1 {
		t.Fatal("pre-cap series must not be rerouted to overflow")
	}
	// Removing the cap readmits new label sets.
	reg.SetMaxSeriesPerBase(0)
	if reg.Counter(`x_total{a="4"}`) == c1 {
		t.Fatal("uncapped registry should admit new label sets again")
	}
}
