package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders a consistent snapshot of the registry in the
// Prometheus text exposition format (version 0.0.4): counters, gauges,
// and histograms with cumulative `le` buckets, `_sum`, and `_count`
// series. Series are emitted in lexical order so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

func writePrometheus(w io.Writer, snap Snapshot) error {
	typed := map[string]bool{} // base names whose # TYPE line was emitted
	emitType := func(series, kind string) string {
		base := baseName(series)
		if typed[base] {
			return ""
		}
		typed[base] = true
		return fmt.Sprintf("# TYPE %s %s\n", base, kind)
	}
	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		b.WriteString(emitType(name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		b.WriteString(emitType(name, "gauge"))
		fmt.Fprintf(&b, "%s %d\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		b.WriteString(emitType(name, "histogram"))
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s %d\n", seriesWithLE(name, formatBound(bound)), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s %d\n", seriesWithLE(name, "+Inf"), cum)
		fmt.Fprintf(&b, "%s %s\n", suffixSeries(name, "_sum"), strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s %d\n", suffixSeries(name, "_count"), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesWithLE appends the histogram bucket label to a series name that
// may already carry labels: x{a="b"} → x_bucket{a="b",le="..."}.
func seriesWithLE(series, le string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i] + "_bucket{" + series[i+1:len(series)-1] + `,le="` + le + `"}`
	}
	return series + `_bucket{le="` + le + `"}`
}

// suffixSeries inserts a suffix before any label set: x{a="b"} + _sum →
// x_sum{a="b"}.
func suffixSeries(series, suffix string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i] + suffix + series[i:]
	}
	return series + suffix
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// ParsePrometheus validates a text exposition: every non-comment line must
// be `series value` with a well-formed series name (optional label set)
// and a numeric value, and every series must be preceded by a # TYPE line
// for its base name. It is a structural validator for tests, not a full
// Prometheus parser.
func ParsePrometheus(text string) error {
	typed := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("line %d: expected `series value`, got %q", ln+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", ln+1, value, err)
		}
		base := baseName(series)
		if i := strings.IndexByte(series, '{'); i >= 0 && !strings.HasSuffix(series, "}") {
			return fmt.Errorf("line %d: unterminated label set in %q", ln+1, series)
		}
		// Histogram child series reference the parent's TYPE line.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(base, suffix); trimmed != base && typed[trimmed] {
				base = trimmed
				break
			}
		}
		if !typed[base] {
			return fmt.Errorf("line %d: series %q has no preceding TYPE line", ln+1, series)
		}
	}
	return nil
}

// Handler serves the registry and tracer over HTTP:
//
//	GET /metrics       Prometheus text exposition of reg
//	GET /trace/recent  JSON array of the tracer's retained traces
//
// Either argument may be nil; the corresponding endpoint then serves an
// empty document. This is what `gkfwd -metrics-addr` mounts.
func Handler(reg *Registry, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recent := tracer.Recent()
		if recent == nil {
			recent = []TraceSnapshot{}
		}
		json.NewEncoder(w).Encode(recent)
	})
	return mux
}
