package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution. Buckets are defined by their
// inclusive upper bounds; one implicit +Inf bucket catches the rest.
// Observations are lock-free (atomic per-bucket counts plus a CAS-summed
// total), so the forwarding hot path can record latencies and sizes
// without serializing.
type Histogram struct {
	bounds []float64      // sorted inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// sort.SearchFloat64s finds the first bound >= v for inclusive upper
	// bounds (Prometheus `le` semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the Prometheus base unit for
// time). No-op on a nil histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LatencyBuckets is the default latency bucket layout: 10 µs to ~10 s,
// roughly trebling, in seconds. It brackets everything from an in-memory
// PFS dispatch to a throttled-OST transfer, and comfortably contains the
// paper's 399 µs live solve time.
func LatencyBuckets() []float64 {
	return []float64{
		10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3,
		100e-3, 300e-3, 1, 3, 10,
	}
}

// SizeBuckets is the default request-size bucket layout: 256 B to 64 MiB
// in powers of four, bracketing the 512 KiB forwarding chunk and the
// merged dispatches AGIOS produces.
func SizeBuckets() []float64 {
	out := make([]float64, 0, 10)
	for b := float64(256); b <= 64<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}
