package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTraceLifecycle prices one fully recorded request trace — Start,
// the five forwarding-stack hops, Finish into the ring — which is the
// entire per-request cost tracing adds to the data path (metrics counters
// are separate, plain atomics). The budget in ISSUE 2 is <5% of a
// forwarded 64 KiB write (~60 µs), so this must stay in the low
// single-digit µs.
func BenchmarkTraceLifecycle(b *testing.B) {
	tc := NewTracer(0)
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tc.Start("app", "write", "/f")
		id := t.TraceID()
		tc.AddHop(id, "rpc", start, 64, "addr")
		tc.AddHop(id, "ion", start, 64, "ion00")
		tc.AddHop(id, "agios", start, 64, "FIFO")
		tc.AddHop(id, "pfs", start, 64, "write")
		t.Hop("fwd", start, 64, "chunks=1")
		t.Finish()
	}
}

// BenchmarkCounterAdd prices the always-on metrics primitive.
func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

// BenchmarkHistogramObserve prices one latency observation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", LatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}
