// Package telemetry is the monitoring plane of the reproduction: a
// dependency-free, concurrency-safe metrics registry plus a lightweight
// per-request trace context threaded through the forwarding stack
// (fwd → rpc → ion → agios → pfs).
//
// The paper's arbitration loop runs on observed behaviour — §3.1 builds
// per-application bandwidth profiles from metrics collected on the I/O
// nodes and the MCKP arbiter re-decides from them — so the stack needs a
// uniform way to observe itself before any policy can be trusted at scale.
// This package provides:
//
//   - Counter, Gauge: atomic scalar metrics;
//   - Histogram: fixed-bucket latency/size distributions;
//   - Registry: a named collection with consistent snapshots and
//     Prometheus-style text exposition;
//   - Tracer/Trace: per-request records with one hop per layer
//     (see trace.go);
//   - TestSink: assertion helpers for cross-layer invariants in
//     integration tests (see testsink.go).
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *Tracer, or *Trace are no-ops, so instrumented code never
// branches on "telemetry enabled?" — an uninstrumented component simply
// holds nil handles, and the hot path pays only a nil check.
//
// Consistency: metrics that are logically updated together (e.g. an I/O
// node's request count and its byte count) can be incremented inside
// Registry.Update, and readers using Registry.View (or Snapshot) are
// guaranteed never to observe a torn set — the update group either
// happened entirely or not at all from the reader's point of view.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depths, running jobs).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative to decrease). No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. Metric names follow the
// Prometheus convention (`layer_quantity_unit_total`) and may carry a
// label set in curly braces, which becomes part of the series identity:
//
//	reg.Counter(`ion_writes_total{node="ion00"}`)
//
// The zero value is not usable; construct with New. A nil *Registry is a
// valid no-op sink: every accessor returns a nil metric handle.
type Registry struct {
	// gate serializes consistent update groups (Update, RLock) against
	// consistent readers (View/Snapshot, Lock). Plain single-metric
	// operations bypass it entirely and stay purely atomic.
	gate sync.RWMutex

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// seriesPerBase counts distinct labeled series per metric family
	// (base name), across all metric kinds, enforcing maxSeries.
	seriesPerBase map[string]int
	maxSeries     int
}

// DefaultMaxSeriesPerBase bounds how many distinct label sets one metric
// family (base name) may create in a registry. Per-tenant labels (QoS app
// IDs, ION addresses) are unbounded inputs; without a cap a misbehaving
// caller could grow the registry — and every Snapshot — without limit.
// Series past the cap coalesce into `base{overflow="true"}` so the total
// is still correct and the overflow is itself observable.
const DefaultMaxSeriesPerBase = 256

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		seriesPerBase: make(map[string]int),
		maxSeries:     DefaultMaxSeriesPerBase,
	}
}

// SetMaxSeriesPerBase adjusts the per-family label-cardinality cap; n ≤ 0
// removes it. Only series created afterwards are affected — existing
// series are never renamed. No-op on a nil registry.
func (r *Registry) SetMaxSeriesPerBase(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxSeries = n
}

// admit applies the cardinality cap to a new labeled series name,
// returning either the name itself (and counting it against its family)
// or the family's overflow series. Unlabeled series are never coalesced:
// they are fixed in the code, not driven by runtime input. Caller holds
// r.mu and has already checked the series does not exist.
func (r *Registry) admit(name string) string {
	base := baseName(name)
	if base == name {
		return name
	}
	if r.maxSeries > 0 && r.seriesPerBase[base] >= r.maxSeries {
		return base + `{overflow="true"}`
	}
	r.seriesPerBase[base]++
	return name
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		name = r.admit(name)
		if c, ok = r.counters[name]; !ok {
			c = &Counter{}
			r.counters[name] = c
		}
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		name = r.admit(name)
		if g, ok = r.gauges[name]; !ok {
			g = &Gauge{}
			r.gauges[name] = g
		}
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds are ignored for an existing
// histogram). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		name = r.admit(name)
		if h, ok = r.histograms[name]; !ok {
			h = newHistogram(bounds)
			r.histograms[name] = h
		}
	}
	return h
}

// Update runs fn as one consistent update group: a concurrent View or
// Snapshot observes either every mutation fn makes or none of them.
// Multiple Update groups run concurrently with each other. On a nil
// registry fn still runs (its metric handles are no-ops anyway).
func (r *Registry) Update(fn func()) {
	if r == nil {
		fn()
		return
	}
	r.gate.RLock()
	defer r.gate.RUnlock()
	fn()
}

// View runs fn while no Update group is in flight, so values read inside
// fn form a consistent cut across every metric maintained via Update. On a
// nil registry fn still runs.
func (r *Registry) View(fn func()) {
	if r == nil {
		fn()
		return
	}
	r.gate.Lock()
	defer r.gate.Unlock()
	fn()
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot returns a consistent copy of all metrics (no Update group is
// half-applied in it). On a nil registry it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	r.mu.Unlock()

	r.gate.Lock()
	defer r.gate.Unlock()
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		snap.Histograms[n] = h.snapshot()
	}
	return snap
}

// baseName strips a label set from a series name: `x_total{a="b"}` → x_total.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// sortedKeys returns map keys in lexical order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
