package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := New()
	c := reg.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("x_total") != c {
		t.Fatal("same name should return the same counter")
	}
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Add(1)
	reg.Gauge("b").Set(2)
	reg.Histogram("c", LatencyBuckets()).Observe(1)
	ran := false
	reg.Update(func() { ran = true })
	if !ran {
		t.Fatal("Update on nil registry must still run fn")
	}
	reg.View(func() {})
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}

	var tc *Tracer
	tr := tc.Start("app", "write", "/p")
	if tr.TraceID() != 0 {
		t.Fatal("nil trace must have ID 0")
	}
	tr.Hop("fwd", time.Now(), 1, "")
	tr.Finish()
	tc.AddHop(17, "ion", time.Now(), 0, "")
	if tc.Recent() != nil || tc.Active() != 0 {
		t.Fatal("nil tracer must be empty")
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// semantics: a value exactly on a bound lands in that bound's bucket, one
// ulp above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // on the bound: inclusive
		{math.Nextafter(1, 2), 1}, {5, 1}, {10, 1},
		{10.0001, 2}, {100, 2},
		{100.0001, 3}, {1e9, 3}, // +Inf bucket
	}
	for _, c := range cases {
		before := h.counts[c.bucket].Load()
		h.Observe(c.v)
		if got := h.counts[c.bucket].Load(); got != before+1 {
			t.Errorf("Observe(%v): bucket %d not incremented", c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var wantSum float64
	for _, c := range cases {
		wantSum += c.v
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	reg := New()
	h := reg.Histogram("h", []float64{100, 1, 10})
	h.Observe(2)
	snap := reg.Snapshot().Histograms["h"]
	if snap.Bounds[0] != 1 || snap.Bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", snap.Bounds)
	}
	if snap.Counts[1] != 1 {
		t.Fatalf("Observe(2) should land in (1,10] bucket: %v", snap.Counts)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run with -race) and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat", LatencyBuckets())
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var bucketTotal int64
	snap := h.snapshot()
	for _, c := range snap.Counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

// TestUpdateViewConsistency: counters incremented together inside Update
// must never be observed torn by View — the invariant a==b holds in every
// view even under heavy concurrent updating.
func TestUpdateViewConsistency(t *testing.T) {
	reg := New()
	a, b := reg.Counter("a_total"), reg.Counter("b_total")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.Update(func() {
					a.Inc()
					b.Inc()
				})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		var va, vb int64
		reg.View(func() {
			va, vb = a.Value(), b.Value()
		})
		if va != vb {
			t.Fatalf("torn view: a=%d b=%d", va, vb)
		}
	}
	close(stop)
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["a_total"] != snap.Counters["b_total"] {
		t.Fatalf("torn snapshot: %v", snap.Counters)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := New()
	reg.Counter("rpc_calls_total").Add(3)
	reg.Counter(`ion_writes_total{node="ion00"}`).Add(2)
	reg.Counter(`ion_writes_total{node="ion01"}`).Add(5)
	reg.Gauge("agios_queue_depth").Set(1)
	h := reg.Histogram("rpc_call_latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rpc_calls_total counter\nrpc_calls_total 3\n",
		`ion_writes_total{node="ion00"} 2`,
		`ion_writes_total{node="ion01"} 5`,
		"# TYPE agios_queue_depth gauge\nagios_queue_depth 1\n",
		"# TYPE rpc_call_latency_seconds histogram\n",
		`rpc_call_latency_seconds_bucket{le="0.001"} 2`,
		`rpc_call_latency_seconds_bucket{le="0.01"} 2`,
		`rpc_call_latency_seconds_bucket{le="+Inf"} 3`,
		"rpc_call_latency_seconds_sum 0.501",
		"rpc_call_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE ion_writes_total"); n != 1 {
		t.Errorf("labeled series must share one TYPE line, got %d", n)
	}
}

func TestPrometheusParses(t *testing.T) {
	reg := New()
	reg.Counter("a_total").Inc()
	reg.Histogram("h_seconds", LatencyBuckets()).Observe(0.002)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if err := ParsePrometheus(sb.String()); err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
}
