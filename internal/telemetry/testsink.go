package telemetry

import (
	"fmt"
	"strings"
)

// TestSink bundles a registry and tracer for integration tests, with
// helpers for asserting cross-layer invariants (e.g. bytes entering the
// forwarding client equal bytes leaving at the PFS). Production code never
// uses it; livestack tests pass sink.Registry/sink.Tracer into the stack
// and assert through the sink afterwards.
type TestSink struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewTestSink returns a sink with a fresh registry and tracer.
func NewTestSink() *TestSink {
	return &TestSink{Registry: New(), Tracer: NewTracer(0)}
}

// CounterValue returns the named counter's value (0 if never created).
func (s *TestSink) CounterValue(name string) int64 {
	return s.Registry.Counter(name).Value()
}

// GaugeValue returns the named gauge's level (0 if never created).
func (s *TestSink) GaugeValue(name string) int64 {
	return s.Registry.Gauge(name).Value()
}

// CounterSum sums every series of a base counter name across label sets —
// e.g. CounterSum("ion_writes_total") adds ion_writes_total{node="ion00"},
// {node="ion01"}, …
func (s *TestSink) CounterSum(base string) int64 {
	snap := s.Registry.Snapshot()
	var total int64
	for name, v := range snap.Counters {
		if baseName(name) == base {
			total += v
		}
	}
	return total
}

// HistogramCount returns the observation count of the first histogram
// whose series name starts with prefix (0 if none).
func (s *TestSink) HistogramCount(prefix string) int64 {
	snap := s.Registry.Snapshot()
	var total int64
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, prefix) {
			total += h.Count
		}
	}
	return total
}

// ExpectEqual verifies two counter sums match across layers; the returned
// error names both sides for test failure messages.
func (s *TestSink) ExpectEqual(baseA, baseB string) error {
	a, b := s.CounterSum(baseA), s.CounterSum(baseB)
	if a != b {
		return fmt.Errorf("telemetry: %s=%d but %s=%d", baseA, a, baseB, b)
	}
	return nil
}

// Traces returns the retained trace snapshots, oldest first.
func (s *TestSink) Traces() []TraceSnapshot {
	return s.Tracer.Recent()
}

// TraceFor returns the most recent trace whose path matches, and whether
// one was found.
func (s *TestSink) TraceFor(path string) (TraceSnapshot, bool) {
	traces := s.Tracer.Recent()
	for i := len(traces) - 1; i >= 0; i-- {
		if traces[i].Path == path {
			return traces[i], true
		}
	}
	return TraceSnapshot{}, false
}

// HopLayers returns the distinct layer names of a trace in hop order
// (duplicates from multi-chunk requests collapsed).
func HopLayers(t TraceSnapshot) []string {
	var out []string
	seen := map[string]bool{}
	for _, h := range t.Hops {
		if !seen[h.Layer] {
			seen[h.Layer] = true
			out = append(out, h.Layer)
		}
	}
	return out
}
