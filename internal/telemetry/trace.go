package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hop is one layer's contribution to a request trace: where the request
// was, when, for how long, and how many payload bytes crossed the layer.
type Hop struct {
	// Layer names the stack layer ("fwd", "rpc", "ion", "agios", "pfs").
	Layer string `json:"layer"`
	// Start is when the layer began handling the request.
	Start time.Time `json:"start"`
	// Duration is how long the layer held it.
	Duration time.Duration `json:"duration_ns"`
	// Bytes is the payload volume this hop moved (0 for metadata).
	Bytes int64 `json:"bytes"`
	// Note carries layer detail (operation names, merge counts).
	Note string `json:"note,omitempty"`
}

// Trace is one forwarded request's record. The ID travels with the request
// across the rpc wire, so server-side layers append hops to the same
// record the client started (within one process; a distributed deployment
// would join on the ID instead).
type Trace struct {
	ID    uint64
	App   string
	Op    string
	Path  string
	Begin time.Time

	tc *Tracer

	mu   sync.Mutex
	end  time.Time
	hops []Hop
	// hopStore inlines storage for the first hops so a typical
	// single-chunk trace (fwd, rpc, ion, agios, pfs) records without any
	// slice regrowth: on the forwarding hot path the stack already
	// allocates large transfer buffers, and every extra small allocation
	// there risks a GC-assist park worth far more than the alloc itself.
	hopStore [8]Hop
}

// TraceID returns the wire identifier (0 on a nil trace, meaning
// "untraced").
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// Hop appends a hop that started at start and just finished now. No-op on
// a nil trace.
func (t *Trace) Hop(layer string, start time.Time, bytes int64, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hops = append(t.hops, Hop{
		Layer: layer, Start: start, Duration: time.Since(start),
		Bytes: bytes, Note: note,
	})
	t.mu.Unlock()
}

// Finish closes the trace and retires it to the tracer's ring buffer.
// No-op on a nil trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = time.Now()
	t.mu.Unlock()
	t.tc.finish(t)
}

// TraceSnapshot is an immutable copy of a finished (or in-flight) trace,
// with hops sorted by start time — the order the request actually moved
// through the stack, regardless of which layer reported first.
type TraceSnapshot struct {
	ID    uint64        `json:"id"`
	App   string        `json:"app,omitempty"`
	Op    string        `json:"op"`
	Path  string        `json:"path"`
	Begin time.Time     `json:"begin"`
	End   time.Time     `json:"end"`
	Hops  []Hop         `json:"hops"`
	Total time.Duration `json:"total_ns"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		ID: t.ID, App: t.App, Op: t.Op, Path: t.Path,
		Begin: t.Begin, End: t.end,
		Hops: append([]Hop(nil), t.hops...),
	}
	if !s.End.IsZero() {
		s.Total = s.End.Sub(s.Begin)
	}
	sort.SliceStable(s.Hops, func(i, j int) bool { return s.Hops[i].Start.Before(s.Hops[j].Start) })
	return s
}

// Tracer mints request traces and retains the most recent finished ones in
// a fixed-size ring buffer. Finished traces are stored as compact
// snapshots, not live *Trace objects: the live structs carry a mutex and
// inline hop storage sized for recording, and keeping hundreds of them
// reachable measurably inflates GC mark work on allocation-heavy
// forwarding paths. A nil *Tracer is a valid no-op (Start returns a nil
// *Trace whose methods no-op and whose TraceID is 0).
type Tracer struct {
	next atomic.Uint64

	mu     sync.Mutex
	active map[uint64]*Trace
	ring   []TraceSnapshot
	pos    int
}

// DefaultTraceCapacity is the ring size used when NewTracer is given ≤0.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity finished traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{active: make(map[uint64]*Trace), ring: make([]TraceSnapshot, 0, capacity)}
}

// Start opens a trace for one request. Returns nil on a nil tracer.
func (tc *Tracer) Start(app, op, path string) *Trace {
	if tc == nil {
		return nil
	}
	t := &Trace{
		ID: tc.next.Add(1), App: app, Op: op, Path: path,
		Begin: time.Now(), tc: tc,
	}
	t.hops = t.hopStore[:0]
	tc.mu.Lock()
	tc.active[t.ID] = t
	tc.mu.Unlock()
	return t
}

// AddHop appends a hop to the active trace with the given ID. Unknown or
// zero IDs (untraced requests, or traces already finished) are dropped
// silently — a server receiving a foreign trace ID must not fail the
// request over observability. No-op on a nil tracer.
func (tc *Tracer) AddHop(id uint64, layer string, start time.Time, bytes int64, note string) {
	if tc == nil || id == 0 {
		return
	}
	tc.mu.Lock()
	t := tc.active[id]
	tc.mu.Unlock()
	t.Hop(layer, start, bytes, note)
}

// finish retires t from the active set into the ring as a snapshot,
// dropping the last reference to the live trace.
func (tc *Tracer) finish(t *Trace) {
	s := t.snapshot()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.active, t.ID)
	if len(tc.ring) < cap(tc.ring) {
		tc.ring = append(tc.ring, s)
		return
	}
	tc.ring[tc.pos] = s
	tc.pos = (tc.pos + 1) % cap(tc.ring)
}

// Recent returns snapshots of the retained finished traces, oldest first.
// Empty on a nil tracer.
func (tc *Tracer) Recent() []TraceSnapshot {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(tc.ring))
	out = append(out, tc.ring[tc.pos:]...)
	out = append(out, tc.ring[:tc.pos]...)
	return out
}

// Active reports how many traces are open (0 on nil).
func (tc *Tracer) Active() int {
	if tc == nil {
		return 0
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.active)
}
