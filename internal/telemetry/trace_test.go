package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceLifecycle(t *testing.T) {
	tc := NewTracer(4)
	tr := tc.Start("app1", "write", "/f")
	if tr.TraceID() == 0 {
		t.Fatal("live trace must have a nonzero ID")
	}
	if tc.Active() != 1 {
		t.Fatalf("active = %d, want 1", tc.Active())
	}

	start := time.Now()
	tr.Hop("fwd", start, 128, "")
	tc.AddHop(tr.TraceID(), "ion", start.Add(time.Millisecond), 128, "")
	tc.AddHop(999999, "ghost", start, 0, "") // unknown ID: dropped
	tr.Finish()

	if tc.Active() != 0 {
		t.Fatalf("active after finish = %d, want 0", tc.Active())
	}
	recent := tc.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.App != "app1" || got.Op != "write" || got.Path != "/f" {
		t.Fatalf("trace fields wrong: %+v", got)
	}
	if len(got.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 (ghost hop must be dropped)", len(got.Hops))
	}
	if got.Hops[0].Layer != "fwd" || got.Hops[1].Layer != "ion" {
		t.Fatalf("hops not start-ordered: %+v", got.Hops)
	}
	if got.Total <= 0 {
		t.Fatal("finished trace must have a positive total")
	}

	// A hop arriving after Finish must be dropped, not appended.
	tc.AddHop(got.ID, "late", time.Now(), 0, "")
	if n := len(tc.Recent()[0].Hops); n != 2 {
		t.Fatalf("late hop leaked into finished trace: %d hops", n)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tc := NewTracer(3)
	for i := 0; i < 5; i++ {
		tc.Start("", "op", fmt.Sprintf("/f%d", i)).Finish()
	}
	recent := tc.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	for i, want := range []string{"/f2", "/f3", "/f4"} {
		if recent[i].Path != want {
			t.Fatalf("ring order wrong: %v", recent)
		}
	}
}

// TestTracerConcurrent exercises concurrent Start/AddHop/Finish/Recent
// under -race.
func TestTracerConcurrent(t *testing.T) {
	tc := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := tc.Start("app", "write", "/p")
				tr.Hop("fwd", time.Now(), 64, "")
				tc.AddHop(tr.TraceID(), "ion", time.Now(), 64, "")
				tr.Finish()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tc.Recent()
		}
	}()
	wg.Wait()
	<-done
	if tc.Active() != 0 {
		t.Fatalf("leaked active traces: %d", tc.Active())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	sink := NewTestSink()
	sink.Registry.Counter("rpc_calls_total").Add(2)
	sink.Registry.Histogram("rpc_call_latency_seconds", LatencyBuckets()).Observe(0.001)
	tr := sink.Tracer.Start("a", "write", "/x")
	tr.Hop("fwd", time.Now(), 10, "")
	tr.Finish()

	h := Handler(sink.Registry, sink.Tracer)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "rpc_calls_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if err := ParsePrometheus(body); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/recent", nil))
	var traces []TraceSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("/trace/recent not JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Path != "/x" || len(traces[0].Hops) != 1 {
		t.Fatalf("unexpected traces: %+v", traces)
	}
}

func TestTestSinkHelpers(t *testing.T) {
	sink := NewTestSink()
	sink.Registry.Counter(`ion_writes_total{node="ion00"}`).Add(3)
	sink.Registry.Counter(`ion_writes_total{node="ion01"}`).Add(4)
	sink.Registry.Counter("fwd_forwarded_ops_total").Add(7)
	if got := sink.CounterSum("ion_writes_total"); got != 7 {
		t.Fatalf("CounterSum = %d, want 7", got)
	}
	if err := sink.ExpectEqual("ion_writes_total", "fwd_forwarded_ops_total"); err != nil {
		t.Fatalf("ExpectEqual: %v", err)
	}
	sink.Registry.Counter("fwd_forwarded_ops_total").Inc()
	if err := sink.ExpectEqual("ion_writes_total", "fwd_forwarded_ops_total"); err == nil {
		t.Fatal("ExpectEqual should report the mismatch")
	}

	tr := sink.Tracer.Start("a", "write", "/y")
	now := time.Now()
	tr.Hop("fwd", now, 1, "")
	tr.Hop("rpc", now.Add(time.Microsecond), 1, "")
	tr.Hop("rpc", now.Add(2*time.Microsecond), 1, "")
	tr.Hop("pfs", now.Add(3*time.Microsecond), 1, "")
	tr.Finish()
	got, ok := sink.TraceFor("/y")
	if !ok {
		t.Fatal("TraceFor missed the trace")
	}
	layers := HopLayers(got)
	if len(layers) != 3 || layers[0] != "fwd" || layers[1] != "rpc" || layers[2] != "pfs" {
		t.Fatalf("HopLayers = %v", layers)
	}
}
