// Package torture runs a Jepsen-style integrity campaign against the full
// forwarding stack: a seeded nemesis schedules kills, warm restarts, bit
// corruption, delays, resets and mid-frame cuts against a live 12-ION
// stack while concurrent clients write known patterns, and a byte-level
// oracle checks what actually reached storage.
//
// The oracle has three teeth:
//
//  1. Content: every file must read back byte-identical to the pattern the
//     workload wrote, no matter what the nemesis did in flight.
//  2. Exactly-once: for every segment acknowledged on its first attempt, no
//     single I/O node may have applied any of its bytes more than once —
//     transport retries must be absorbed by the dedup window, not
//     re-executed. (Segments the application itself retried are exempt:
//     an app-level retry is a new intent with a new sequence number, and
//     re-application of identical bytes is the documented behaviour.)
//  3. Liveness: at least one kill→warm-restart→rejoin cycle happens per
//     run, so the campaign always exercises the recovery path.
//
// Every decision the nemesis and the workload make is drawn from rand
// streams derived from Config.Seed, so a failing run is reproducible with
// TORTURE_SEED (see the test and EXPERIMENTS.md).
package torture

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultnet"
	"repro/internal/fwd"
	"repro/internal/ion"
	"repro/internal/livestack"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// Config parameterizes a campaign. The zero value of every field selects a
// default sized for a CI run under the race detector.
type Config struct {
	// Seed drives every random decision (nemesis schedule, corruption
	// streams, workload interleaving hints).
	Seed int64
	// IONs is the stack size; ≤0 selects 12 (the paper's deployment).
	IONs int
	// Clients is the number of concurrent writing applications; ≤0
	// selects 3.
	Clients int
	// Segments is how many segments each client writes; ≤0 selects 20.
	Segments int
	// SegSize is the bytes per segment; ≤0 selects 8 KiB (two forwarding
	// chunks, so every segment exercises splitting).
	SegSize int
	// Steps is the number of nemesis events; ≤0 selects 14.
	Steps int
	// Timeout bounds the whole campaign; ≤0 selects 90s.
	Timeout time.Duration
	// Log, when non-nil, receives progress lines (wire it to t.Logf).
	Log func(format string, args ...any)
}

// Report summarizes a campaign that passed its oracle.
type Report struct {
	Seed           int64
	Events         []string // the nemesis schedule, in order
	Restarts       int      // kill→warm-restart cycles performed
	BitsFlipped    int64    // bits the Corrupt plans flipped on the wire
	ChecksumErrors int64    // frames the CRC trailer rejected, stack-wide
	DedupReplays   int64    // writes answered from a dedup window
	AppRetries     int      // segments the workload had to re-issue
	CleanSegments  int      // segments acknowledged on the first attempt
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"seed=%d events=%d restarts=%d flipped=%d crc_rejects=%d replays=%d app_retries=%d clean=%d",
		r.Seed, len(r.Events), r.Restarts, r.BitsFlipped, r.ChecksumErrors,
		r.DedupReplays, r.AppRetries, r.CleanSegments)
}

// oracle wraps one I/O node's storage backend and counts, per byte of
// every file, how many times this node applied a write covering it. The
// shared store still does the real work; the oracle only watches.
type oracle struct {
	ion.Backend
	mu    sync.Mutex
	cover map[string][]uint8
}

func newOracle(b ion.Backend) *oracle {
	return &oracle{Backend: b, cover: make(map[string][]uint8)}
}

func (o *oracle) record(path string, off int64, n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.cover[path]
	if need := int(off) + n; len(s) < need {
		s = append(s, make([]uint8, need-len(s))...)
	}
	for i := 0; i < n; i++ {
		if s[int(off)+i] < 255 {
			s[int(off)+i]++
		}
	}
	o.cover[path] = s
}

func (o *oracle) Write(path string, off int64, p []byte) (int, error) {
	o.record(path, off, len(p))
	return o.Backend.Write(path, off, p)
}

func (o *oracle) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	o.record(path, off, len(p))
	return o.Backend.WriteAs(writer, path, off, p)
}

// maxCover returns the highest per-byte apply count this node recorded in
// [off, off+n) of path.
func (o *oracle) maxCover(path string, off int64, n int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.cover[path]
	max := 0
	for i := int(off); i < int(off)+n && i < len(s); i++ {
		if int(s[i]) > max {
			max = int(s[i])
		}
	}
	return max
}

// pattern is the expected byte at offset off of client c's file: a rolling
// sequence offset by the client index so cross-file mixups can't cancel
// out.
func pattern(c int, off int64) byte { return byte((off + int64(c)*13) % 251) }

func filename(c int) string { return fmt.Sprintf("/torture/c%d", c) }

// Run executes one campaign and checks the oracle. A nil error means every
// invariant held; the Report is returned in both cases (partially filled
// on failure) so callers can log what the schedule did.
func Run(cfg Config) (*Report, error) {
	if cfg.IONs <= 0 {
		cfg.IONs = 12
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Segments <= 0 {
		cfg.Segments = 20
	}
	if cfg.SegSize <= 0 {
		cfg.SegSize = 8 << 10
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 14
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 90 * time.Second
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	deadline := time.Now().Add(cfg.Timeout)
	rep := &Report{Seed: cfg.Seed}

	injectors := make([]*faultnet.Injector, cfg.IONs)
	oracles := make([]*oracle, cfg.IONs)
	for i := range injectors {
		injectors[i] = faultnet.NewInjector(faultnet.Plan{})
	}
	st, err := livestack.Start(livestack.Config{
		IONs:      cfg.IONs,
		Scheduler: "FIFO",
		ChunkSize: 4 << 10,

		WireChecksum: true,
		DedupWindow:  256,

		RPC: rpc.Options{
			CallTimeout:      250 * time.Millisecond,
			MaxRetries:       3,
			RetryBackoff:     time.Millisecond,
			RetryBackoffMax:  10 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  100 * time.Millisecond,
		},
		HealthInterval:      20 * time.Millisecond,
		HealthTimeout:       250 * time.Millisecond,
		HealthFailThreshold: 3,
		HealthRiseThreshold: 2,

		QueueCap:       64,
		RetryAfterHint: 2 * time.Millisecond,
		Throttle:       fwd.ThrottleConfig{Enabled: true},

		WrapListener: func(i int, ln net.Listener) net.Listener {
			return faultnet.WrapListener(ln, injectors[i])
		},
		WrapBackend: func(i int, b ion.Backend) ion.Backend {
			oracles[i] = newOracle(b)
			return oracles[i]
		},
	})
	if err != nil {
		return rep, fmt.Errorf("torture: start stack: %w", err)
	}
	defer st.Close()

	// Phase 0 (clean network): clients, arbitration, file creation. Setup
	// faults are the chaos tests' business; the campaign starts at a known
	// state so the oracle has no excuses.
	// The clients are ranks of one application (distinct dedup identities,
	// shared allocation) — with several identical apps the arbitration
	// policy is free to give one of them direct PFS access, which would
	// silently exempt it from the campaign.
	clients := make([]*fwd.Client, cfg.Clients)
	spec, err := perfmodel.AppByLabel("IOR-MPI")
	if err != nil {
		return rep, err
	}
	for c := range clients {
		cl, err := st.NewClient("torture")
		if err != nil {
			return rep, err
		}
		clients[c] = cl
	}
	if alloc, err := st.Arbiter.JobStarted(policy.FromAppSpec("torture", spec)); err != nil {
		return rep, err
	} else if len(alloc) == 0 {
		return rep, fmt.Errorf("torture: the arbiter allocated no I/O nodes")
	}
	for c, cl := range clients {
		for len(cl.IONs()) == 0 {
			if time.Now().After(deadline) {
				return rep, fmt.Errorf("torture: client %d never observed an allocation", c)
			}
			time.Sleep(time.Millisecond)
		}
		if err := cl.Create(filename(c)); err != nil {
			return rep, fmt.Errorf("torture: create %s: %v", filename(c), err)
		}
	}

	// Workload: each client writes its segments in order, retrying a
	// failed segment until it lands (each retry is a new intent — those
	// segments are exempted from the exactly-once check), and
	// occasionally reads back a segment it already completed. Reads go
	// through the faulted stack too: a successful read must return
	// exactly what was acknowledged.
	attempts := make([][]int, cfg.Clients) // per client, per segment
	var readbacks int64
	workErr := make(chan error, cfg.Clients)
	var wg sync.WaitGroup
	workloadDone := make(chan struct{})
	for c := range clients {
		attempts[c] = make([]int, cfg.Segments)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			crng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x9e3779b9*(c+1))))
			seg := make([]byte, cfg.SegSize)
			for s := 0; s < cfg.Segments; s++ {
				// Pace the stream so writes stay in flight across most of
				// the nemesis schedule instead of racing past it.
				time.Sleep(time.Duration(40+crng.Intn(60)) * time.Millisecond)
				off := int64(s) * int64(cfg.SegSize)
				for i := range seg {
					seg[i] = pattern(c, off+int64(i))
				}
				for {
					attempts[c][s]++
					if _, err := cl.Write(filename(c), off, seg); err == nil {
						break
					}
					if time.Now().After(deadline) {
						workErr <- fmt.Errorf("torture: client %d segment %d never landed", c, s)
						return
					}
					time.Sleep(time.Duration(5+crng.Intn(10)) * time.Millisecond)
				}
				if s > 0 && crng.Intn(4) == 0 {
					prev := crng.Intn(s)
					poff := int64(prev) * int64(cfg.SegSize)
					buf := make([]byte, cfg.SegSize)
					if n, err := cl.Read(filename(c), poff, buf); err == nil && n == len(buf) {
						for i := range buf {
							if buf[i] != pattern(c, poff+int64(i)) {
								workErr <- fmt.Errorf(
									"torture: client %d read back corrupt byte %d of segment %d: got %d want %d",
									c, i, prev, buf[i], pattern(c, poff+int64(i)))
								return
							}
						}
						atomic.AddInt64(&readbacks, 1)
					}
				}
			}
		}(c)
	}
	go func() { wg.Wait(); close(workloadDone) }()

	// Nemesis: a single goroutine draws a deterministic schedule from the
	// seed and applies one fault at a time, always cleaning up after
	// itself. It stops early if the workload finishes first.
	nrng := rand.New(rand.NewSource(cfg.Seed))
	sleep := func(d time.Duration) bool { // false = workload finished
		select {
		case <-workloadDone:
			return false
		case <-time.After(d):
			return true
		}
	}
	killRestart := func() error {
		i := nrng.Intn(cfg.IONs)
		hold := time.Duration(50+nrng.Intn(100)) * time.Millisecond
		rep.Events = append(rep.Events, fmt.Sprintf("kill ion%02d hold %v", i, hold))
		logf("nemesis: kill ion%02d, restart after %v", i, hold)
		st.Daemons[i].Close()
		time.Sleep(hold)
		if err := st.RestartION(i); err != nil {
			return fmt.Errorf("torture: restart ion%02d: %w", i, err)
		}
		rep.Restarts++
		return nil
	}
	nemesis := func() error {
		for step := 0; step < cfg.Steps; step++ {
			select {
			case <-workloadDone:
				return nil
			default:
			}
			i := nrng.Intn(cfg.IONs)
			hold := time.Duration(30+nrng.Intn(60)) * time.Millisecond
			switch pick := nrng.Intn(100); {
			case pick < 25:
				if err := killRestart(); err != nil {
					return err
				}
			case pick < 55:
				seed := nrng.Int63()
				rep.Events = append(rep.Events, fmt.Sprintf("corrupt ion%02d seed %d hold %v", i, seed, hold))
				logf("nemesis: corrupt ion%02d for %v", i, hold)
				injectors[i].Set(faultnet.Plan{Kind: faultnet.Corrupt, Seed: seed, FlipOneIn: 4})
				sleep(hold)
				rep.BitsFlipped += injectors[i].Flipped()
				injectors[i].Set(faultnet.Plan{})
			case pick < 70:
				d := time.Duration(2+nrng.Intn(8)) * time.Millisecond
				rep.Events = append(rep.Events, fmt.Sprintf("delay ion%02d %v hold %v", i, d, hold))
				logf("nemesis: delay ion%02d by %v for %v", i, d, hold)
				injectors[i].Set(faultnet.Plan{Kind: faultnet.Delay, Delay: d})
				sleep(hold)
				injectors[i].Set(faultnet.Plan{})
			case pick < 85:
				rep.Events = append(rep.Events, fmt.Sprintf("reset ion%02d hold %v", i, hold))
				logf("nemesis: reset ion%02d for %v", i, hold)
				injectors[i].Set(faultnet.Plan{Kind: faultnet.Reset})
				sleep(hold)
				injectors[i].Set(faultnet.Plan{})
			default:
				budget := int64(200 + nrng.Intn(4000))
				rep.Events = append(rep.Events, fmt.Sprintf("drop-after ion%02d %dB hold %v", i, budget, hold))
				logf("nemesis: cut ion%02d mid-frame after %dB for %v", i, budget, hold)
				injectors[i].Set(faultnet.Plan{Kind: faultnet.DropAfter, Bytes: budget})
				sleep(hold)
				injectors[i].Set(faultnet.Plan{})
			}
			if !sleep(time.Duration(20+nrng.Intn(60)) * time.Millisecond) {
				return nil
			}
		}
		return nil
	}
	if err := nemesis(); err != nil {
		return rep, err
	}
	// The liveness invariant: every campaign exercises at least one
	// kill→restart→rejoin, whatever the dice said.
	if rep.Restarts == 0 {
		if err := killRestart(); err != nil {
			return rep, err
		}
	}
	for i := range injectors {
		injectors[i].Set(faultnet.Plan{})
	}

	select {
	case <-workloadDone:
	case <-time.After(time.Until(deadline)):
		return rep, fmt.Errorf("torture: workload did not finish before the deadline")
	}
	close(workErr)
	if err := <-workErr; err != nil {
		return rep, err
	}

	// Oracle 1 — content: every file reads back byte-identical from the
	// backing store (no forwarding layer between us and the truth).
	total := cfg.Segments * cfg.SegSize
	for c := range clients {
		buf := make([]byte, total)
		if n, err := st.Store.Read(filename(c), 0, buf); err != nil || n != total {
			return rep, fmt.Errorf("torture: store read %s: n=%d err=%v", filename(c), n, err)
		}
		for i := range buf {
			if buf[i] != pattern(c, int64(i)) {
				return rep, fmt.Errorf("torture: %s byte %d corrupted: got %d want %d",
					filename(c), i, buf[i], pattern(c, int64(i)))
			}
		}
	}

	// Oracle 2 — exactly-once: a segment acknowledged on its first
	// attempt must not have any byte applied more than once by any single
	// I/O node; a duplicate there means a transport retry re-executed
	// instead of replaying from the dedup window.
	for c := range clients {
		for s := 0; s < cfg.Segments; s++ {
			if attempts[c][s] > 1 {
				rep.AppRetries += attempts[c][s] - 1
				continue
			}
			rep.CleanSegments++
			off := int64(s) * int64(cfg.SegSize)
			for i, o := range oracles {
				if m := o.maxCover(filename(c), off, cfg.SegSize); m > 1 {
					return rep, fmt.Errorf(
						"torture: ion%02d applied bytes of %s segment %d (one acknowledged attempt) %d times — dedup failed",
						i, filename(c), s, m)
				}
			}
		}
	}
	if rep.CleanSegments == 0 {
		return rep, fmt.Errorf("torture: every segment needed app-level retries — the exactly-once oracle checked nothing")
	}

	// Bookkeeping for the report: stack-wide integrity counters.
	for _, d := range st.Daemons {
		rep.DedupReplays += d.Stats().DedupReplays
	}
	for name, v := range st.Telemetry.Snapshot().Counters {
		if strings.HasPrefix(name, "rpc_checksum_errors_total") {
			rep.ChecksumErrors += v
		}
	}
	logf("torture: %s readbacks=%d", rep, atomic.LoadInt64(&readbacks))
	return rep, nil
}
