package torture

import (
	"os"
	"strconv"
	"testing"
)

// TestTorture runs one seeded campaign. The seed comes from TORTURE_SEED
// when set (reproduce a failure with `TORTURE_SEED=<n> make torture`);
// otherwise it defaults to 1 so CI runs are deterministic.
func TestTorture(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("TORTURE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("TORTURE_SEED=%q: %v", s, err)
		}
		seed = v
	}
	rep, err := Run(Config{Seed: seed, Log: t.Logf})
	if err != nil {
		t.Fatalf("campaign failed (reproduce with TORTURE_SEED=%d): %v\nschedule: %v", seed, err, rep.Events)
	}
	if rep.Restarts < 1 {
		t.Fatalf("no restart-rejoin cycle ran: %s", rep)
	}
	t.Logf("campaign passed: %s", rep)
}

// TestTortureSecondSeed runs a different schedule, so a single `go test`
// covers two distinct fault interleavings even without -count.
func TestTortureSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: one campaign is enough")
	}
	if os.Getenv("TORTURE_SEED") != "" {
		t.Skip("TORTURE_SEED pins a specific schedule; skipping the second seed")
	}
	rep, err := Run(Config{Seed: 20260806, Log: t.Logf})
	if err != nil {
		t.Fatalf("campaign failed (reproduce with TORTURE_SEED=20260806): %v\nschedule: %v", err, rep.Events)
	}
	if rep.Restarts < 1 {
		t.Fatalf("no restart-rejoin cycle ran: %s", rep)
	}
	t.Logf("campaign passed: %s", rep)
}
