// Package units provides byte-size and bandwidth quantities used throughout
// the forwarding stack and the experiment harness.
//
// Sizes are plain int64 byte counts; Bandwidth is bytes per second stored as
// a float64. Helper constructors and formatters follow the paper's
// conventions (requests in KiB/MiB, bandwidths in MB/s and GB/s, where the
// paper's MB is the decimal megabyte).
package units

import (
	"fmt"
	"time"
)

// Byte size constants (binary prefixes, as used for request sizes).
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Decimal constants used for bandwidth reporting (MB/s, GB/s in the paper).
const (
	KB int64 = 1_000
	MB int64 = 1_000_000
	GB int64 = 1_000_000_000
)

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// BandwidthFromMBps converts a value in decimal megabytes per second.
func BandwidthFromMBps(mbps float64) Bandwidth { return Bandwidth(mbps * float64(MB)) }

// MBps reports the bandwidth in decimal megabytes per second, the unit used
// by the paper's per-application plots (Figs. 1, 5, 8, 9).
func (b Bandwidth) MBps() float64 { return float64(b) / float64(MB) }

// GBps reports the bandwidth in decimal gigabytes per second, the unit used
// by the paper's aggregate plots (Figs. 2, 6).
func (b Bandwidth) GBps() float64 { return float64(b) / float64(GB) }

// String formats the bandwidth with an adaptive unit.
func (b Bandwidth) String() string {
	switch {
	case b >= Bandwidth(GB):
		return fmt.Sprintf("%.2f GB/s", b.GBps())
	case b >= Bandwidth(MB):
		return fmt.Sprintf("%.2f MB/s", b.MBps())
	case b >= Bandwidth(KB):
		return fmt.Sprintf("%.2f KB/s", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%.0f B/s", float64(b))
	}
}

// Over returns the bandwidth achieved when transferring bytes in d.
// It returns 0 for non-positive durations to keep aggregations total.
func Over(bytes int64, d time.Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(bytes) / d.Seconds())
}

// TimeToTransfer returns the duration needed to move bytes at rate b.
// A non-positive bandwidth yields an infinite-like large duration cap.
func TimeToTransfer(bytes int64, b Bandwidth) time.Duration {
	if b <= 0 {
		return time.Duration(1<<62 - 1)
	}
	secs := float64(bytes) / float64(b)
	if secs > 1e12 {
		return time.Duration(1<<62 - 1)
	}
	return time.Duration(secs * float64(time.Second))
}

// FormatBytes renders a byte count with an adaptive binary unit.
func FormatBytes(n int64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.2f TiB", float64(n)/float64(TiB))
	case n >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
