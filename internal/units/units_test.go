package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBandwidthConversions(t *testing.T) {
	b := BandwidthFromMBps(1024)
	if got := b.MBps(); math.Abs(got-1024) > 1e-9 {
		t.Fatalf("MBps round trip: got %v want 1024", got)
	}
	if got := b.GBps(); math.Abs(got-1.024) > 1e-9 {
		t.Fatalf("GBps: got %v want 1.024", got)
	}
}

func TestOver(t *testing.T) {
	cases := []struct {
		bytes int64
		d     time.Duration
		want  float64 // MB/s
	}{
		{bytes: 100 * MB, d: time.Second, want: 100},
		{bytes: 50 * MB, d: 500 * time.Millisecond, want: 100},
		{bytes: 1 * GB, d: 2 * time.Second, want: 500},
		{bytes: 0, d: time.Second, want: 0},
	}
	for _, c := range cases {
		if got := Over(c.bytes, c.d).MBps(); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Over(%d, %v) = %v MB/s, want %v", c.bytes, c.d, got, c.want)
		}
	}
}

func TestOverZeroDuration(t *testing.T) {
	if got := Over(123, 0); got != 0 {
		t.Fatalf("Over with zero duration: got %v want 0", got)
	}
	if got := Over(123, -time.Second); got != 0 {
		t.Fatalf("Over with negative duration: got %v want 0", got)
	}
}

func TestTimeToTransfer(t *testing.T) {
	d := TimeToTransfer(100*MB, BandwidthFromMBps(100))
	if math.Abs(d.Seconds()-1.0) > 1e-6 {
		t.Fatalf("TimeToTransfer: got %v want 1s", d)
	}
	if d := TimeToTransfer(1, 0); d < time.Duration(1<<61) {
		t.Fatalf("TimeToTransfer at zero bandwidth should be huge, got %v", d)
	}
}

func TestTransferRoundTripProperty(t *testing.T) {
	f := func(mbps uint16, mib uint16) bool {
		if mbps == 0 {
			return true
		}
		bytes := int64(mib) * MiB
		bw := BandwidthFromMBps(float64(mbps))
		d := TimeToTransfer(bytes, bw)
		back := Over(bytes, d)
		if bytes == 0 {
			return back == 0
		}
		return math.Abs(float64(back-bw))/float64(bw) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		b    Bandwidth
		want string
	}{
		{BandwidthFromMBps(2500), "2.50 GB/s"},
		{BandwidthFromMBps(100), "100.00 MB/s"},
		{Bandwidth(5_000), "5.00 KB/s"},
		{Bandwidth(12), "12 B/s"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", float64(c.b), got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{KiB, "1.00 KiB"},
		{4 * MiB, "4.00 MiB"},
		{3 * GiB, "3.00 GiB"},
		{2 * TiB, "2.00 TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatBytesMonotoneUnits(t *testing.T) {
	// Property: larger sizes never format with a smaller unit suffix rank.
	rank := func(s string) int {
		switch {
		case strings.HasSuffix(s, "TiB"):
			return 4
		case strings.HasSuffix(s, "GiB"):
			return 3
		case strings.HasSuffix(s, "MiB"):
			return 2
		case strings.HasSuffix(s, "KiB"):
			return 1
		default:
			return 0
		}
	}
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return rank(FormatBytes(x)) <= rank(FormatBytes(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
