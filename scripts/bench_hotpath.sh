#!/bin/sh
# Measures the forwarded-write hot path after the zero-allocation rewrite
# (pooled frame buffers, vectored writes, span coalescing, allocation-free
# routing) and emits BENCH_hotpath.json at the repo root.
#
# Two benchmarks feed the report:
#
#   - livestack.BenchmarkHotPathWrite/{512K,64K}: end to end — a live
#     I/O-node stack, one forwarding client, repeated writes of one chunk
#     (512 KiB) and a small request (64 KiB). Compared against the seed
#     baseline committed below (min ns/op over paired runs on the same
#     machine, measured immediately before the rewrite) to report the
#     ns/op reduction the rewrite bought.
#   - rpc.BenchmarkWirePathWrite512K: the rpc layer alone (TCP round trip
#     to an acking echo server). This carries the allocs/op budget — the
#     frame pools own every allocation here, so the number is
#     deterministic and CI-enforceable. The script FAILS if allocs/op
#     exceeds ALLOC_BUDGET.
#
# Each PAIRS iteration runs the benchmarks in a fresh `go test` process
# and the summary takes the MINIMUM ns/op across iterations: on
# shared/noisy machines the minimum is the standard low-noise estimate of
# a benchmark's true cost, and single runs here can swing ±20%.
set -eu

cd "$(dirname "$0")/.."

PAIRS="${PAIRS:-5}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_hotpath.json}"

# Seed baseline: min ns/op over 5 paired runs at commit ba6aded (before
# the hot-path rewrite), same benchmark bodies.
SEED_512K="${SEED_512K:-393681}"
SEED_64K="${SEED_64K:-56279}"
SEED_ALLOCS_512K="${SEED_ALLOCS_512K:-21}"

# allocs/op ceiling on the wire path (the two remaining allocations are
# the request/response Path string decodes, one per side).
ALLOC_BUDGET="${ALLOC_BUDGET:-2}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo ">> benchmarking forwarded-write hot path ($PAIRS paired runs, $BENCHTIME each)"
i=1
while [ "$i" -le "$PAIRS" ]; do
    go test -run '^$' -bench 'BenchmarkHotPathWrite' -benchmem -benchtime "$BENCHTIME" \
        ./internal/livestack/ | grep ns/op | tee -a "$RAW"
    go test -run '^$' -bench 'BenchmarkWirePathWrite512K' -benchmem -benchtime "$BENCHTIME" \
        ./internal/rpc/ | grep ns/op | tee -a "$RAW"
    i=$((i + 1))
done

awk -v out="$OUT" -v seed512="$SEED_512K" -v seed64="$SEED_64K" \
    -v seedallocs="$SEED_ALLOCS_512K" -v budget="$ALLOC_BUDGET" -v pairs="$PAIRS" '
/BenchmarkHotPathWrite\/512K/ {
    if (!e512 || $3 < e512) e512 = $3
    if (!ea512 || $9 < ea512) ea512 = $9
}
/BenchmarkHotPathWrite\/64K/  { if (!e64 || $3 < e64) e64 = $3 }
/BenchmarkWirePathWrite512K/ {
    if (!w512 || $3 < w512) w512 = $3
    if (!wa512 || $9 < wa512) wa512 = $9
}
END {
    if (!e512 || !e64 || !w512) { print "bench_hotpath: no samples parsed" > "/dev/stderr"; exit 1 }
    r512 = (seed512 - e512) * 100.0 / seed512
    r64  = (seed64 - e64) * 100.0 / seed64
    ok = (wa512 <= budget)
    printf "{\n"                                                        >  out
    printf "  \"estimator\": \"min over %d paired runs\",\n", pairs    >> out
    printf "  \"end_to_end\": {\n"                                      >> out
    printf "    \"benchmark\": \"BenchmarkHotPathWrite\",\n"            >> out
    printf "    \"seed_512k_ns_per_op\": %d,\n", seed512                >> out
    printf "    \"now_512k_ns_per_op\": %d,\n", e512                    >> out
    printf "    \"reduction_512k_pct\": %.2f,\n", r512                  >> out
    printf "    \"seed_64k_ns_per_op\": %d,\n", seed64                  >> out
    printf "    \"now_64k_ns_per_op\": %d,\n", e64                      >> out
    printf "    \"reduction_64k_pct\": %.2f,\n", r64                    >> out
    printf "    \"seed_512k_allocs_per_op\": %d,\n", seedallocs         >> out
    printf "    \"now_512k_allocs_per_op\": %d\n", ea512                >> out
    printf "  },\n"                                                     >> out
    printf "  \"wire_path\": {\n"                                       >> out
    printf "    \"benchmark\": \"BenchmarkWirePathWrite512K\",\n"       >> out
    printf "    \"ns_per_op\": %d,\n", w512                             >> out
    printf "    \"allocs_per_op\": %d,\n", wa512                        >> out
    printf "    \"allocs_budget\": %d,\n", budget                       >> out
    printf "    \"within_budget\": %s\n", (ok ? "true" : "false")       >> out
    printf "  }\n"                                                      >> out
    printf "}\n"                                                        >> out
    printf "end-to-end 512K: seed=%dns now=%dns (-%.2f%%), 64K: seed=%dns now=%dns (-%.2f%%)\n", \
        seed512, e512, r512, seed64, e64, r64
    printf "wire path 512K: %dns %d allocs/op (budget %d)\n", w512, wa512, budget
    if (!ok) { print "bench_hotpath: allocs/op over budget" > "/dev/stderr"; exit 1 }
}' "$RAW"

echo "wrote $OUT"
