#!/bin/sh
# Measures the telemetry overhead on the forwarding hot path and emits
# BENCH_telemetry.json at the repo root.
#
# Methodology: BenchmarkForwardHotPath/{bare,telemetry} forward 64 KiB
# writes through one live I/O node; "bare" runs with metrics only (request
# tracing disabled — a nil tracer short-circuits every hop), "telemetry"
# with the shared registry plus full request tracing. Each PAIRS iteration
# runs both variants in one `go test` process, and the summary takes the
# MINIMUM ns/op per variant across iterations: on shared/noisy machines
# the minimum is the standard low-noise estimate of a benchmark's true
# cost, and single runs here can swing ±20%.
set -eu

cd "$(dirname "$0")/.."

PAIRS="${PAIRS:-5}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_telemetry.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo ">> benchmarking forwarding hot path ($PAIRS paired runs, $BENCHTIME each)"
i=1
while [ "$i" -le "$PAIRS" ]; do
    go test -run '^$' -bench 'BenchmarkForwardHotPath' -benchtime "$BENCHTIME" \
        ./internal/livestack/ | grep ns/op | tee -a "$RAW"
    i=$((i + 1))
done

awk -v out="$OUT" '
/BenchmarkForwardHotPath\/bare/      { if (!b || $3 < b) b = $3 }
/BenchmarkForwardHotPath\/telemetry/ { if (!t || $3 < t) t = $3 }
END {
    if (!b || !t) { print "bench_telemetry: no samples parsed" > "/dev/stderr"; exit 1 }
    pct = (t - b) * 100.0 / b
    printf "{\n"                                          >  out
    printf "  \"benchmark\": \"BenchmarkForwardHotPath\",\n" >> out
    printf "  \"estimator\": \"min ns/op over paired runs\",\n" >> out
    printf "  \"bare_ns_per_op\": %d,\n", b               >> out
    printf "  \"telemetry_ns_per_op\": %d,\n", t          >> out
    printf "  \"overhead_pct\": %.2f,\n", pct             >> out
    printf "  \"budget_pct\": 5.0,\n"                     >> out
    printf "  \"within_budget\": %s\n", (pct < 5.0 ? "true" : "false") >> out
    printf "}\n"                                          >> out
    printf "telemetry overhead: bare=%dns instrumented=%dns (%+.2f%%)\n", b, t, pct
}' "$RAW"

echo "wrote $OUT"
